"""Static determinism linter: per-rule sources, waivers, self-hosting."""

import os
import textwrap

import pytest

from repro.check import (
    LINT_SCHEMA,
    format_lint_findings,
    format_lint_summary,
    lint_source,
    run_lint,
)
from repro.check.rules import (
    ErrorTaxonomyRule,
    FastpathTwinRule,
    HookGuardRule,
    IdKeyRule,
    UnitsMixingRule,
    WallClockRule,
    default_rules,
)
from repro.errors import LintError
from repro.obs.export import export_lint_json, load_lint_json

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src", "repro")
TESTS = os.path.dirname(os.path.abspath(__file__))


def _lint(source, rules, path="mod.py"):
    return lint_source(textwrap.dedent(source), path, rules)


def _rules_of(findings):
    return [f.rule for f in findings]


class TestWallClockRule:
    def test_time_calls_flagged(self):
        findings = _lint(
            """
            import time

            def f():
                return time.perf_counter() + time.time()
            """,
            [WallClockRule()],
        )
        assert _rules_of(findings) == ["wall-clock", "wall-clock"]

    def test_aliased_import_flagged(self):
        findings = _lint(
            """
            import time as t

            def f():
                return t.monotonic()
            """,
            [WallClockRule()],
        )
        assert _rules_of(findings) == ["wall-clock"]

    def test_unseeded_randomness_flagged(self):
        findings = _lint(
            """
            import random
            from random import Random

            def f():
                a = random.random()
                b = Random()
                return a, b
            """,
            [WallClockRule()],
        )
        assert len(findings) == 2

    def test_seeded_random_allowed(self):
        findings = _lint(
            """
            import random

            def f(seed):
                return random.Random(seed)
            """,
            [WallClockRule()],
        )
        assert findings == []

    def test_datetime_now_flagged(self):
        findings = _lint(
            """
            import datetime

            def f():
                return datetime.datetime.now()
            """,
            [WallClockRule()],
        )
        assert _rules_of(findings) == ["wall-clock"]

    def test_rng_module_exempt(self):
        findings = _lint(
            """
            import random

            def f():
                return random.random()
            """,
            [WallClockRule()],
            path="repro/sim/rng.py",
        )
        assert findings == []


class TestFastpathTwinRule:
    def test_orphan_fast_flagged(self):
        findings = _lint(
            """
            def _access_fast(x):
                return x
            """,
            [FastpathTwinRule()],
        )
        assert _rules_of(findings) == ["fastpath-twin"]

    def test_twinned_pair_allowed(self):
        findings = _lint(
            """
            def _access_fast(x):
                return x

            def _access_slow(x):
                return x
            """,
            [FastpathTwinRule()],
        )
        assert findings == []

    def test_public_reference_counts_as_twin(self):
        findings = _lint(
            """
            class C:
                def access(self, x):
                    return x

                def _access_slow(self, x):
                    return x
            """,
            [FastpathTwinRule()],
        )
        assert findings == []

    def test_finish_requires_fingerprint_test(self, tmp_path):
        rule = FastpathTwinRule()
        rule.note_tests(False)
        assert list(rule.finish(str(tmp_path)))
        rule = FastpathTwinRule()
        rule.note_tests(True)
        assert not list(rule.finish(str(tmp_path)))


class TestHookGuardRule:
    def test_unguarded_hook_call_flagged(self):
        findings = _lint(
            """
            class Ring:
                flight = None

                def produce(self):
                    self.flight.line_event(1)
            """,
            [HookGuardRule()],
        )
        assert _rules_of(findings) == ["zero-cost-hooks"]

    def test_guarded_call_allowed(self):
        findings = _lint(
            """
            class Ring:
                flight = None

                def produce(self):
                    if self.flight is not None:
                        self.flight.line_event(1)
            """,
            [HookGuardRule()],
        )
        assert findings == []

    def test_hoisted_alias_guard_allowed(self):
        findings = _lint(
            """
            class Ring:
                sanitizer = None

                def produce(self):
                    san = self.sanitizer
                    if san is not None:
                        san.slot_publish(self)
            """,
            [HookGuardRule()],
        )
        assert findings == []

    def test_missing_class_default_flagged(self):
        findings = _lint(
            """
            class Ring:
                def produce(self):
                    if self.sanitizer is not None:
                        self.sanitizer.slot_publish(self)
            """,
            [HookGuardRule()],
        )
        assert "zero-cost-hooks" in _rules_of(findings)

    def test_early_return_guard_allowed(self):
        findings = _lint(
            """
            class Ring:
                faults = None

                def produce(self):
                    if self.faults is None:
                        return 0
                    return self.faults.decide()
            """,
            [HookGuardRule()],
        )
        assert findings == []


class TestIdKeyRule:
    def test_iteration_over_id_keyed_dict_flagged(self):
        findings = _lint(
            """
            def f(objs):
                table = {}
                for obj in objs:
                    table[id(obj)] = obj
                for key in table:
                    print(key)
            """,
            [IdKeyRule()],
        )
        assert _rules_of(findings) == ["id-keyed-iteration"]

    def test_items_iteration_flagged(self):
        findings = _lint(
            """
            class C:
                def f(self, obj):
                    self.seen[id(obj)] = obj
                    return [v for _, v in self.seen.items()]
            """,
            [IdKeyRule()],
        )
        assert _rules_of(findings) == ["id-keyed-iteration"]

    def test_lookup_only_allowed(self):
        findings = _lint(
            """
            def f(table, obj):
                table[id(obj)] = obj
                return table[id(obj)]
            """,
            [IdKeyRule()],
        )
        assert findings == []


class TestErrorTaxonomyRule:
    TAXONOMY = frozenset({"ReproError", "PoolError"})

    def test_stdlib_raise_flagged(self):
        findings = _lint(
            """
            def f():
                raise ValueError("nope")
            """,
            [ErrorTaxonomyRule(self.TAXONOMY)],
        )
        assert _rules_of(findings) == ["error-taxonomy"]

    def test_taxonomy_raise_allowed(self):
        findings = _lint(
            """
            from repro.errors import PoolError

            def f():
                raise PoolError("nope")
            """,
            [ErrorTaxonomyRule(self.TAXONOMY)],
        )
        assert findings == []

    def test_local_subclass_allowed(self):
        findings = _lint(
            """
            from repro.errors import ReproError

            class AppError(ReproError):
                pass

            def f():
                raise AppError("nope")
            """,
            [ErrorTaxonomyRule(self.TAXONOMY)],
        )
        assert findings == []

    def test_reraise_variable_allowed(self):
        findings = _lint(
            """
            def f(exc):
                raise exc
            """,
            [ErrorTaxonomyRule(self.TAXONOMY)],
        )
        assert findings == []


class TestUnitsMixingRule:
    def test_additive_time_size_mix_flagged(self):
        findings = _lint(
            """
            def f(latency_ns, size_bytes):
                return latency_ns + size_bytes
            """,
            [UnitsMixingRule()],
        )
        assert _rules_of(findings) == ["units-mixing"]
        assert "latency_ns + size_bytes" in findings[0].message

    def test_subtraction_and_attributes_flagged(self):
        findings = _lint(
            """
            def f(self):
                return self.window_bytes - self.deadline_ns
            """,
            [UnitsMixingRule()],
        )
        assert _rules_of(findings) == ["units-mixing"]

    def test_gbps_counts_as_size_kind(self):
        findings = _lint(
            """
            def f(rate_gbps, delay_ns):
                return rate_gbps + delay_ns
            """,
            [UnitsMixingRule()],
        )
        assert _rules_of(findings) == ["units-mixing"]

    def test_same_kind_addition_allowed(self):
        findings = _lint(
            """
            def f(a_ns, b_ns, x_bytes, y_bytes):
                return (a_ns + b_ns, x_bytes - y_bytes)
            """,
            [UnitsMixingRule()],
        )
        assert findings == []

    def test_multiplicative_conversion_allowed(self):
        # Multiplication/division is how units legitimately convert.
        findings = _lint(
            """
            def f(size_bytes, rate_bytes_per_ns, base_ns):
                return base_ns + size_bytes / rate_bytes_per_ns
            """,
            [UnitsMixingRule()],
        )
        assert findings == []

    def test_conversion_helper_call_allowed(self):
        # A call result carries no suffix, so converting through a
        # repro.units helper never trips the rule.
        findings = _lint(
            """
            from repro.units import gbps_to_bytes_per_ns

            def f(base_ns, rate_gbps):
                return base_ns + gbps_to_bytes_per_ns(rate_gbps)
            """,
            [UnitsMixingRule()],
        )
        assert findings == []


class TestStaleWaiverRule:
    def test_stale_waiver_flagged(self):
        findings = _lint(
            "x = 1  # repro: allow(wall-clock) nothing here\n",
            default_rules(),
        )
        assert _rules_of(findings) == ["stale-waiver"]
        assert "stale waiver" in findings[0].message

    def test_active_waiver_not_flagged(self):
        findings = _lint(
            """
            import time

            def f():
                return time.time()  # repro: allow(wall-clock) host time
            """,
            default_rules(),
        )
        assert _rules_of(findings) == ["wall-clock"]
        assert findings[0].waived

    def test_waiver_above_finding_line_counts_as_used(self):
        findings = _lint(
            """
            import time

            def f():
                # repro: allow(wall-clock) host time
                return time.time()
            """,
            default_rules(),
        )
        assert _rules_of(findings) == ["wall-clock"]

    def test_docstring_waiver_text_ignored(self):
        # Waiver syntax quoted in a docstring is not a comment token.
        findings = _lint(
            '''
            """Example: # repro: allow(wall-clock) in docs."""
            x = 1
            ''',
            default_rules(),
        )
        assert findings == []

    def test_unknown_rule_name_flagged(self):
        findings = _lint(
            "x = 1  # repro: allow(no-such-rule)\n",
            default_rules(),
        )
        assert _rules_of(findings) == ["stale-waiver"]
        assert "unknown rule" in findings[0].message

    def test_stale_waiver_finding_itself_waivable(self):
        findings = _lint(
            "x = 1  # repro: allow(wall-clock, stale-waiver) historic\n",
            default_rules(),
        )
        assert _rules_of(findings) == ["stale-waiver"]
        assert findings[0].waived


class TestWaivers:
    RULES_SRC = """
        import time

        def f():
            return time.time()  # repro: allow(wall-clock) host timestamp

        def g():
            # repro: allow(wall-clock) host timestamp
            return time.time()

        def h():
            return time.time()
        """

    def test_waivers_cover_same_and_next_line(self):
        findings = _lint(self.RULES_SRC, [WallClockRule()])
        assert [f.waived for f in findings] == [True, True, False]

    def test_waiver_for_other_rule_does_not_apply(self):
        findings = _lint(
            """
            import time

            def f():
                return time.time()  # repro: allow(error-taxonomy) wrong rule
            """,
            [WallClockRule()],
        )
        assert [f.waived for f in findings] == [False]

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def f(:\n", "bad.py", [WallClockRule()])


class TestSelfHost:
    """The shipping tree must lint clean modulo justified waivers."""

    def test_repro_tree_is_clean(self):
        report = run_lint(root=SRC, tests_root=TESTS)
        assert report.active == [], format_lint_findings(report)
        assert report.ok

    def test_waivers_are_counted_not_silent(self):
        report = run_lint(root=SRC, tests_root=TESTS)
        assert len(report.waived) > 0
        doc = report.as_report()
        assert doc["waived"] == len(report.waived)
        assert doc["active"] == 0

    def test_report_schema_and_roundtrip(self, tmp_path):
        report = run_lint(root=SRC, tests_root=TESTS)
        doc = report.as_report(config={"root": SRC})
        assert doc["schema"] == LINT_SCHEMA
        path = str(tmp_path / "lint.json")
        export_lint_json(doc, path)
        assert load_lint_json(path) == doc

    def test_tables_render(self):
        report = run_lint(root=SRC, tests_root=TESTS)
        assert "Lint summary" in format_lint_summary(report)
        assert "waived" in format_lint_findings(report)

    def test_subsystem_root_inherits_taxonomy(self):
        # A subsystem-scoped run walks up to the package errors.py.
        report = run_lint(root=os.path.join(SRC, "topology"), tests_root=TESTS)
        assert report.active == [], format_lint_findings(report)


class TestDefaultRules:
    def test_all_rules_present(self):
        names = {rule.name for rule in default_rules(frozenset({"ReproError"}))}
        assert names == {
            "wall-clock",
            "fastpath-twin",
            "zero-cost-hooks",
            "id-keyed-iteration",
            "error-taxonomy",
            "units-mixing",
            "stale-waiver",
        }
