"""Traffic generator semantics."""

import pytest

from repro.core import CcnicConfig, CcnicInterface
from repro.errors import WorkloadError
from repro.platform import System, icx
from repro.workloads.packets import Packet
from repro.workloads.trafficgen import LoopbackApp, run_loopback


def make():
    system = System(icx())
    nic = CcnicInterface(system, CcnicConfig())
    driver = nic.driver(0)
    nic.start()
    return system, driver


class TestPacket:
    def test_latency_requires_receipt(self):
        pkt = Packet(size=64, tx_ns=10.0)
        with pytest.raises(WorkloadError):
            _ = pkt.latency_ns
        pkt.rx_ns = 110.0
        assert pkt.latency_ns == 100.0

    def test_size_validated(self):
        with pytest.raises(WorkloadError):
            Packet(size=0)

    def test_unique_ids(self):
        a, b = Packet(size=64), Packet(size=64)
        assert a.pkt_id != b.pkt_id


class TestClosedLoop:
    def test_inflight_bounded(self):
        system, driver = make()
        app = LoopbackApp(driver, 64, 200, tx_batch=8, rx_batch=8, inflight=4)
        max_outstanding = [0]
        gen = app.run()

        def wrapped():
            for delay in gen:
                max_outstanding[0] = max(
                    max_outstanding[0], app.result.sent - app.result.received
                )
                yield delay

        system.sim.spawn(wrapped(), "app")
        system.sim.run(until=1e9, stop_when=lambda: app.done)
        assert app.result.received == 200
        assert max_outstanding[0] <= 4

    def test_warmup_excluded_from_latency(self):
        system, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=100,
                              inflight=1, tx_batch=1, rx_batch=1)
        assert result.latency.count == 100 - 10  # 10% warmup


class TestOpenLoop:
    def test_low_offered_rate_achieved(self):
        system, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=2000,
                              offered_mpps=1.0, tx_batch=8, rx_batch=8)
        assert result.mpps == pytest.approx(1.0, rel=0.15)

    def test_overload_saturates_below_offered(self):
        system, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=4000,
                              offered_mpps=500.0, tx_batch=32, rx_batch=32)
        assert result.mpps < 400.0
        assert result.backpressure_events > 0

    def test_latency_rises_with_load(self):
        s1, d1 = make()
        light = run_loopback(s1, d1, pkt_size=64, n_packets=2000,
                             offered_mpps=1.0, tx_batch=8, rx_batch=8)
        s2, d2 = make()
        heavy = run_loopback(s2, d2, pkt_size=64, n_packets=4000,
                             offered_mpps=18.0, tx_batch=32, rx_batch=32)
        assert heavy.latency.median > light.latency.median


class TestValidation:
    def test_requires_a_load_mode(self):
        _system, driver = make()
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 100)

    def test_rejects_bad_params(self):
        _system, driver = make()
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 0, inflight=1)
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 10, inflight=0)
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 10, offered_mpps=-1.0)
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 10, inflight=1, warmup_fraction=1.0)


class TestPoissonArrivals:
    def test_poisson_achieves_mean_rate(self):
        system, driver = make()
        result = run_loopback(system, driver, pkt_size=64, n_packets=3000,
                              offered_mpps=2.0, tx_batch=8, rx_batch=8,
                              arrivals="poisson")
        assert result.mpps == pytest.approx(2.0, rel=0.25)

    def test_poisson_has_heavier_tail_than_paced(self):
        s1, d1 = make()
        paced = run_loopback(s1, d1, pkt_size=64, n_packets=4000,
                             offered_mpps=12.0, tx_batch=8, rx_batch=8,
                             arrivals="paced")
        s2, d2 = make()
        poisson = run_loopback(s2, d2, pkt_size=64, n_packets=4000,
                               offered_mpps=12.0, tx_batch=8, rx_batch=8,
                               arrivals="poisson")
        assert poisson.latency.percentile(99) > paced.latency.percentile(99)

    def test_poisson_deterministic_per_seed(self):
        s1, d1 = make()
        a = run_loopback(s1, d1, pkt_size=64, n_packets=1000,
                         offered_mpps=3.0, arrivals="poisson", seed=5)
        s2, d2 = make()
        b = run_loopback(s2, d2, pkt_size=64, n_packets=1000,
                         offered_mpps=3.0, arrivals="poisson", seed=5)
        assert a.latency.median == b.latency.median

    def test_unknown_process_rejected(self):
        _system, driver = make()
        with pytest.raises(WorkloadError):
            LoopbackApp(driver, 64, 10, offered_mpps=1.0, arrivals="bursty")
