"""DSA-style bulk-copy engine (§6 extension)."""

import pytest

from repro.errors import ConfigError
from repro.offload import DsaEngine
from repro.offload.dsa import SUBMIT_NS, breakeven_bytes
from repro.platform import System, icx


def make():
    system = System(icx())
    engine = DsaEngine(system)
    engine.start()
    src = system.alloc_host("src", 65536)
    dst = system.alloc_host("dst", 65536)
    return system, engine, src, dst


class TestSubmission:
    def test_submit_cost_is_flat(self):
        system, engine, src, dst = make()
        _c1, ns1 = engine.submit(src.base, dst.base, 256)
        _c2, ns2 = engine.submit(src.base, dst.base, 65536)
        assert ns1 == ns2 == SUBMIT_NS

    def test_requires_start(self):
        system = System(icx())
        engine = DsaEngine(system)
        with pytest.raises(ConfigError):
            engine.submit(0, 64, 64)

    def test_double_start_rejected(self):
        system, engine, _src, _dst = make()
        with pytest.raises(ConfigError):
            engine.start()

    def test_bad_size(self):
        _system, engine, src, dst = make()
        with pytest.raises(ConfigError):
            engine.submit(src.base, dst.base, 0)


class TestCompletion:
    def test_copy_completes(self):
        system, engine, src, dst = make()
        completion, _ns = engine.submit(src.base, dst.base, 4096)
        system.sim.run(until=1e7, stop_when=lambda: completion.done)
        assert completion.done
        assert completion.latency_ns > 0
        assert engine.copies == 1
        assert engine.bytes_copied == 4096

    def test_latency_unavailable_before_done(self):
        _system, engine, src, dst = make()
        completion, _ns = engine.submit(src.base, dst.base, 4096)
        with pytest.raises(ConfigError):
            _ = completion.latency_ns

    def test_copies_execute_in_order(self):
        system, engine, src, dst = make()
        first, _ = engine.submit(src.base, dst.base, 8192)
        second, _ = engine.submit(src.base + 8192, dst.base + 8192, 8192)
        system.sim.run(until=1e7, stop_when=lambda: second.done)
        assert first.done and second.done
        assert first.finished_ns <= second.finished_ns

    def test_destination_becomes_engine_cached(self):
        system, engine, src, dst = make()
        completion, _ = engine.submit(src.base, dst.base, 64)
        system.sim.run(until=1e7, stop_when=lambda: completion.done)
        # The engine wrote the line: it owns it Modified.
        assert system.fabric.state_in(engine.agent, dst.base) is not None

    def test_larger_copies_take_longer(self):
        system, engine, src, dst = make()
        small, _ = engine.submit(src.base, dst.base, 1024)
        system.sim.run(until=1e7, stop_when=lambda: small.done)
        big, _ = engine.submit(src.base, dst.base + 16384, 49152)
        system.sim.run(until=1e8, stop_when=lambda: big.done)
        assert big.latency_ns > small.latency_ns


class TestBreakeven:
    def test_breakeven_is_positive_lines(self):
        be = breakeven_bytes(System(icx()))
        assert be >= 64
        assert be % 64 == 0
