"""Property-based tests: the protocol never violates MESIF invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import CoherenceFabric, CostModel, LineState
from repro.interconnect import Link
from repro.mem import AddressSpace
from repro.sim import Simulator

COST = CostModel(
    l2_hit=5.0,
    local_cache=48.0,
    local_dram=72.0,
    remote_dram=144.0,
    remote_cache_writer_homed=114.0,
    remote_cache_reader_homed=119.0,
    local_invalidate=30.0,
    remote_invalidate=100.0,
)

N_LINES = 16

op_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),     # agent index
    st.integers(min_value=0, max_value=N_LINES - 1),  # line index
    st.sampled_from(["read", "write", "nt", "flush"]),
)


def build():
    sim = Simulator()
    space = AddressSpace()
    link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
    fabric = CoherenceFabric(sim, space, COST, link)
    agents = [
        fabric.new_agent("a0", socket=0, capacity_lines=8),
        fabric.new_agent("a1", socket=0, capacity_lines=8),
        fabric.new_agent("b0", socket=1, capacity_lines=8),
        fabric.new_agent("b1", socket=1, capacity_lines=8),
    ]
    regions = [
        space.allocate("h0", 64 * (N_LINES // 2), home=0),
        space.allocate("h1", 64 * (N_LINES // 2), home=1),
    ]
    def addr_of(i):
        region = regions[i % 2]
        return region.base + (i // 2) * 64
    return fabric, agents, addr_of


@settings(max_examples=120, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=120))
def test_random_operations_preserve_invariants(ops):
    fabric, agents, addr_of = build()
    for agent_idx, line_idx, op in ops:
        agent = agents[agent_idx]
        addr = addr_of(line_idx)
        if op == "read":
            fabric.read(agent, addr, 64)
        elif op == "write":
            fabric.write(agent, addr, 64)
        elif op == "nt":
            fabric.nt_store(agent, addr, 64)
        else:
            fabric.flush(agent, addr, 64)
    fabric.check_invariants()


@settings(max_examples=80, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=80))
def test_latency_is_always_non_negative(ops):
    fabric, agents, addr_of = build()
    for agent_idx, line_idx, op in ops:
        agent = agents[agent_idx]
        addr = addr_of(line_idx)
        if op == "read":
            latency = fabric.read(agent, addr, 64)
        elif op == "write":
            latency = fabric.write(agent, addr, 64)
        elif op == "nt":
            latency = fabric.nt_store(agent, addr, 64)
        else:
            latency = fabric.flush(agent, addr, 64)
        assert latency >= 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=60))
def test_writer_always_ends_modified(ops):
    fabric, agents, addr_of = build()
    for agent_idx, line_idx, op in ops:
        agent = agents[agent_idx]
        addr = addr_of(line_idx)
        if op == "write":
            fabric.write(agent, addr, 64)
            assert fabric.state_in(agent, addr) is LineState.MODIFIED
            # Nobody else may hold the line at all.
            for other in agents:
                if other is not agent:
                    assert fabric.state_in(other, addr) is None
        elif op == "read":
            fabric.read(agent, addr, 64)
            assert fabric.state_in(agent, addr) is not None
        elif op == "nt":
            fabric.nt_store(agent, addr, 64)
            for anyone in agents:
                assert fabric.state_in(anyone, addr) is None
        else:
            fabric.flush(agent, addr, 64)
            for anyone in agents:
                assert fabric.state_in(anyone, addr) is None
