"""Throughput-latency curve harness."""

import pytest

from repro.analysis import InterfaceKind
from repro.analysis.scaling import (
    ScalingModel,
    build_scaling_model,
    throughput_latency_curve,
)
from repro.errors import ConfigError
from repro.platform import icx


@pytest.fixture(scope="module")
def ccnic_model():
    return build_scaling_model(icx(), InterfaceKind.CCNIC, 64,
                               n_packets=6000, inflight=256)


class TestCurve:
    def test_points_cover_fractions(self, ccnic_model):
        points = throughput_latency_curve(
            icx(), InterfaceKind.CCNIC, 64, cores=4,
            fractions=[0.2, 0.8], n_packets=2500, model=ccnic_model,
        )
        assert len(points) == 2
        assert points[0].offered_mpps < points[1].offered_mpps
        assert all(p.cores == 4 for p in points)

    def test_throughput_rises_with_offered_load(self, ccnic_model):
        points = throughput_latency_curve(
            icx(), InterfaceKind.CCNIC, 64, cores=2,
            fractions=[0.2, 0.9], n_packets=2500, model=ccnic_model,
        )
        assert points[1].achieved_mpps > points[0].achieved_mpps

    def test_achieved_never_exceeds_model_max(self, ccnic_model):
        points = throughput_latency_curve(
            icx(), InterfaceKind.CCNIC, 64, cores=4,
            fractions=[0.97], n_packets=2500, model=ccnic_model,
        )
        assert points[0].achieved_mpps <= ccnic_model.max_mpps(4) * 1.001

    def test_gbps_consistent_with_mpps(self, ccnic_model):
        points = throughput_latency_curve(
            icx(), InterfaceKind.CCNIC, 64, cores=1,
            fractions=[0.5], n_packets=2000, model=ccnic_model,
        )
        point = points[0]
        assert point.achieved_gbps == pytest.approx(
            point.achieved_mpps * 64 * 8e-3
        )

    def test_zero_cores_rejected(self, ccnic_model):
        with pytest.raises(ConfigError):
            ccnic_model.max_mpps(0)


class TestModelEdges:
    def test_infinite_link_when_no_wire_bytes(self):
        model = ScalingModel(
            spec=icx(), kind=InterfaceKind.CCNIC, pkt_size=64,
            per_queue_sat_mpps=10.0, wire_bytes_dir0=0.0, wire_bytes_dir1=0.0,
            nic_pps_capacity=None, nic_line_gbps=None,
        )
        assert model.bottleneck_mpps() == float("inf")
        assert model.shared_wait_ns(100.0) == 0.0

    def test_line_rate_cap_applies(self):
        model = ScalingModel(
            spec=icx(), kind=InterfaceKind.CX6, pkt_size=1500,
            per_queue_sat_mpps=50.0, wire_bytes_dir0=10.0, wire_bytes_dir1=10.0,
            nic_pps_capacity=None, nic_line_gbps=200.0,
        )
        # 200Gbps / (1500B * 8) = 16.7 Mpps line-rate bound.
        assert model.bottleneck_mpps() == pytest.approx(200.0 / (1500 * 8e-3))
