"""Tests for the typed data-plane result objects and the NIC protocols."""

import dataclasses
import warnings

import pytest

from repro.core import CcnicConfig, CcnicInterface
from repro.core.buffers import Buffer
from repro.core.nic import NicDriver, NicInterface
from repro.core.results import (
    AllocResult,
    RxResult,
    TxResult,
    reset_tuple_unpack_warnings,
)
from repro.nicmodels import PcieNicInterface
from repro.platform import System, icx
from repro.workloads.packets import Packet


def _buf(addr=0x1000, cap=4096):
    return Buffer(addr=addr, capacity=cap)


@pytest.fixture(autouse=True)
def _rearmed_unpack_warnings():
    """Each test sees freshly armed one-shot deprecation warnings."""
    reset_tuple_unpack_warnings()
    yield
    reset_tuple_unpack_warnings()


class TestAllocResult:
    def test_count_derived_from_bufs(self):
        result = AllocResult(bufs=(_buf(), _buf(0x2000)), ns=12.5)
        assert result.count == 2
        assert result.ns == 12.5

    def test_count_cannot_be_forged(self):
        # count is derived, not a field: it cannot be passed in.
        with pytest.raises(TypeError):
            AllocResult(bufs=(_buf(),), ns=1.0, count=99)
        assert AllocResult(bufs=(_buf(),), ns=1.0).count == 1

    def test_bool_reflects_emptiness(self):
        assert not AllocResult(bufs=(), ns=3.0)
        assert AllocResult(bufs=(_buf(),), ns=3.0)

    def test_tuple_unpack_compat_warns_once(self):
        bufs = (_buf(), _buf(0x2000))
        with pytest.deprecated_call():
            got, ns = AllocResult(bufs=bufs, ns=7.0)
        assert got == list(bufs)
        assert ns == 7.0
        # The warning is one-shot per class: a second unpack is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            again, _ = AllocResult(bufs=bufs, ns=8.0)
        assert again == list(bufs)

    def test_frozen(self):
        result = AllocResult(bufs=(), ns=0.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.ns = 1.0


class TestTxResult:
    def test_fields_and_bool(self):
        assert TxResult(count=3, ns=9.0).count == 3
        assert not TxResult(count=0, ns=9.0)

    def test_tuple_unpack_compat_warns_once(self):
        with pytest.deprecated_call():
            sent, ns = TxResult(count=5, ns=2.0)
        assert (sent, ns) == (5, 2.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sent, ns = TxResult(count=6, ns=3.0)
        assert (sent, ns) == (6, 3.0)

    def test_unpack_warning_is_per_class(self):
        # TxResult having warned must not silence AllocResult's warning.
        with pytest.deprecated_call():
            _, _ = TxResult(count=1, ns=1.0)
        with pytest.deprecated_call():
            _, _ = AllocResult(bufs=(), ns=1.0)


class TestRxResult:
    def test_count_derived_from_entries(self):
        entries = ((Packet(size=64), _buf()),)
        result = RxResult(entries=entries, ns=4.0)
        assert result.count == 1
        assert result.entries == entries

    def test_tuple_unpack_compat_warns_once(self):
        pkt, buf = Packet(size=64), _buf()
        with pytest.deprecated_call():
            got, ns = RxResult(entries=((pkt, buf),), ns=6.0)
        assert got == [(pkt, buf)]
        assert ns == 6.0
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            got, _ = RxResult(entries=((pkt, buf),), ns=6.0)
        assert got == [(pkt, buf)]

    def test_bool(self):
        assert not RxResult(entries=(), ns=1.0)


class TestDriverReturnsTypedResults:
    def _ccnic(self):
        system = System(icx())
        nic = CcnicInterface(system, CcnicConfig())
        driver = nic.driver(0)
        nic.start()
        return system, driver

    def test_ccnic_alloc_tx_rx_types(self):
        system, driver = self._ccnic()
        alloc = driver.alloc([64, 64])
        assert isinstance(alloc, AllocResult) and alloc.count == 2
        for buf in alloc.bufs:
            driver.write_payload(buf, 64)
        tx = driver.tx_burst([(b, Packet(size=64)) for b in alloc.bufs])
        assert isinstance(tx, TxResult) and tx.count == 2
        received = []

        def app():
            while len(received) < 2:
                rx = driver.rx_burst(4)
                assert isinstance(rx, RxResult)
                received.extend(rx.entries)
                yield max(rx.ns, 1.0)

        system.sim.spawn(app(), "app")
        system.sim.run(until=1e7, stop_when=lambda: len(received) >= 2)
        assert len(received) == 2

    def test_pcie_driver_types(self):
        system = System(icx())
        nic = PcieNicInterface(system, icx().nic("cx6"))
        driver = nic.driver(0)
        nic.start()
        alloc = driver.alloc([64])
        assert isinstance(alloc, AllocResult) and alloc.count == 1
        driver.write_payload(alloc.bufs[0], 64)
        tx = driver.tx_burst([(alloc.bufs[0], Packet(size=64))])
        assert isinstance(tx, TxResult) and tx.count == 1
        rx = driver.rx_burst(4)
        assert isinstance(rx, RxResult)


class TestNicProtocols:
    def test_ccnic_satisfies_protocols(self):
        system = System(icx())
        nic = CcnicInterface(system, CcnicConfig())
        driver = nic.driver(0)
        nic.start()
        assert isinstance(nic, NicInterface)
        assert isinstance(driver, NicDriver)
        assert nic.queue_count == 1
        assert nic.link is system.link

    def test_pcie_satisfies_protocols(self):
        system = System(icx())
        nic = PcieNicInterface(system, icx().nic("e810"))
        driver = nic.driver(0)
        nic.start()
        assert isinstance(nic, NicInterface)
        assert isinstance(driver, NicDriver)
        assert nic.queue_count == 1
        assert nic.link is not system.link  # PCIe has its own link

    def test_non_nic_rejected(self):
        assert not isinstance(object(), NicInterface)

    def test_setup_link_no_special_casing(self):
        from repro.analysis.loopback import InterfaceKind, build_interface

        for kind in (InterfaceKind.CCNIC, InterfaceKind.E810):
            setup = build_interface(icx(), kind)
            assert setup.link() is setup.interface.link
