"""Interconnect link cost model."""

import pytest

from repro.errors import InterconnectError
from repro.interconnect import Link, MessageClass
from repro.sim import Simulator


def make_link(bw=64.0, latency=50.0, header=12):
    sim = Simulator()
    return sim, Link(sim, "test", latency_ns=latency, bandwidth_bytes_per_ns=bw, header_overhead=header)


class TestOneWay:
    def test_basic_cost(self):
        _sim, link = make_link(bw=76.0, latency=50.0, header=12)
        # READ carries a 64B line: wire = 76B at 76B/ns = 1ns ser.
        cost = link.one_way(MessageClass.READ, direction=0)
        assert cost == pytest.approx(50.0 + 1.0)

    def test_control_message_payload_zero(self):
        _sim, link = make_link(bw=12.0, latency=10.0, header=12)
        cost = link.one_way(MessageClass.SNOOP, direction=0)
        assert cost == pytest.approx(10.0 + 1.0)

    def test_explicit_payload(self):
        _sim, link = make_link(bw=100.0, latency=0.0, header=0)
        cost = link.one_way(MessageClass.DMA_WRITE, direction=1, payload_bytes=1000)
        assert cost == pytest.approx(10.0)

    def test_invalid_direction(self):
        _sim, link = make_link()
        with pytest.raises(InterconnectError):
            link.one_way(MessageClass.READ, direction=2)

    def test_stats_accumulate(self):
        _sim, link = make_link()
        link.one_way(MessageClass.READ, direction=0)
        link.one_way(MessageClass.RFO, direction=0)
        assert link.stats[0].messages == 2
        assert link.stats[0].by_class == {"read": 1, "rfo": 1}
        assert link.stats[1].messages == 0


class TestUtilizationQueue:
    def test_no_queueing_when_idle(self):
        _sim, link = make_link(bw=76.0)
        wait = link.occupy(MessageClass.READ, direction=0)
        assert wait == 0.0

    def test_own_stream_never_self_queues(self):
        _sim, link = make_link(bw=76.0)
        waits = [
            link.occupy(MessageClass.READ, direction=0, actor="a")
            for _ in range(50)
        ]
        assert all(w == 0.0 for w in waits)

    def test_competing_actors_wait(self):
        sim, link = make_link(bw=76.0)
        # Two heavy streams from distinct actors in the same window.
        for _ in range(200):
            link.occupy(MessageClass.READ, direction=0, actor="a")
        wait = link.occupy(MessageClass.READ, direction=0, actor="b")
        assert wait > 0.0

    def test_wait_grows_with_competitor_load(self):
        def pressure(n):
            _sim, link = make_link(bw=76.0)
            for _ in range(n):
                link.occupy(MessageClass.READ, direction=0, actor="a")
            return link.occupy(MessageClass.READ, direction=0, actor="b")
        assert pressure(400) > pressure(20)

    def test_rho_settles_after_window(self):
        sim, link = make_link(bw=76.0)
        for _ in range(300):
            link.occupy(MessageClass.READ, direction=0, actor="a")
        sim.now = link.WINDOW_NS + 1.0
        link.occupy(MessageClass.READ, direction=0, actor="a")
        assert link.rho(0) > 0.05

    def test_directions_independent(self):
        _sim, link = make_link(bw=76.0)
        for _ in range(200):
            link.occupy(MessageClass.READ, direction=0, actor="a")
        wait = link.occupy(MessageClass.READ, direction=1, actor="b")
        assert wait == 0.0

    def test_inflate_consumes_more_bandwidth(self):
        _sim, link = make_link(bw=76.0)
        link.occupy(MessageClass.WRITEBACK, direction=0, inflate=2.0)
        assert link.stats[0].wire_bytes == 152
        with pytest.raises(InterconnectError):
            link.occupy(MessageClass.WRITEBACK, direction=0, inflate=0.5)

    def test_charge_queueing_false_still_consumes(self):
        _sim, link = make_link(bw=76.0)
        wait = link.occupy(MessageClass.PREFETCH, direction=0, charge_queueing=False)
        assert wait == 0.0
        assert link.stats[0].wire_bytes > 0


class TestUtilities:
    def test_round_trip(self):
        _sim, link = make_link(bw=76.0, latency=50.0)
        cost = link.round_trip(MessageClass.SNOOP, MessageClass.READ, direction=0)
        # snoop: 12/76 ser + 50; read: 76/76 + 50.
        assert cost == pytest.approx(50.0 + 12 / 76 + 50.0 + 1.0)

    def test_utilization(self):
        _sim, link = make_link(bw=76.0)
        link.occupy(MessageClass.READ, direction=0)
        assert link.utilization(0, 10.0) == pytest.approx(0.1)
        assert link.utilization(0, 0.0) == 0.0

    def test_scaled(self):
        _sim, link = make_link(bw=10.0, latency=100.0)
        link.scaled(latency_factor=2.0, bandwidth_factor=0.5)
        assert link.latency_ns == 200.0
        assert link.bandwidth == 5.0
        with pytest.raises(InterconnectError):
            link.scaled(latency_factor=0.0)

    def test_reset_stats(self):
        _sim, link = make_link()
        link.one_way(MessageClass.READ, direction=0)
        link.reset_stats()
        assert link.total_wire_bytes() == 0

    def test_bad_construction(self):
        sim = Simulator()
        with pytest.raises(InterconnectError):
            Link(sim, "bad", latency_ns=-1, bandwidth_bytes_per_ns=1)
        with pytest.raises(InterconnectError):
            Link(sim, "bad", latency_ns=1, bandwidth_bytes_per_ns=0)


class TestMessageClass:
    def test_line_carriers(self):
        assert MessageClass.READ.carries_line
        assert MessageClass.RFO.carries_line
        assert MessageClass.WRITEBACK.carries_line
        assert not MessageClass.SNOOP.carries_line
        assert not MessageClass.ACK.carries_line

    def test_payload_override(self):
        assert MessageClass.DMA_READ.payload_bytes(4096) == 4096
        assert MessageClass.READ.payload_bytes() == 64
        assert MessageClass.SNOOP.payload_bytes() == 0
