"""Detailed multi-queue simulation: several app threads on one system.

These tests validate the scaling substitution documented in DESIGN.md:
running k detailed queue pairs in one simulation should scale close to
linearly while the interconnect is unsaturated, and the shared pool and
fabric must stay consistent under concurrency.
"""

from repro.core import CcnicConfig, CcnicInterface
from repro.platform import System, icx
from repro.workloads.trafficgen import LoopbackApp


def run_multi(n_queues, n_packets=4000, pkt_size=64):
    system = System(icx())
    nic = CcnicInterface(system, CcnicConfig(ring_slots=1024, recycle_stack_max=1024,
                                             pool_buffers=4096))
    drivers = [nic.driver(i) for i in range(n_queues)]
    nic.start()
    apps = []
    for driver in drivers:
        app = LoopbackApp(driver, pkt_size, n_packets, tx_batch=32,
                          rx_batch=32, inflight=256)
        system.sim.spawn(app.run(), f"app{driver.queue_index}")
        apps.append(app)
    system.sim.run(until=5e9, stop_when=lambda: all(a.done for a in apps))
    return system, nic, apps


class TestMultiQueue:
    def test_two_queues_complete(self):
        _system, _nic, apps = run_multi(2, n_packets=2000)
        for app in apps:
            assert app.result.received == 2000

    def test_four_queues_aggregate_scales(self):
        _s1, _n1, one = run_multi(1, n_packets=3000)
        _s4, _n4, four = run_multi(4, n_packets=3000)
        single = one[0].result.mpps
        aggregate = sum(a.result.mpps for a in four)
        # Linear-ish below interconnect saturation; allow contention slack.
        assert aggregate > 2.5 * single

    def test_fabric_invariants_hold_under_concurrency(self):
        system, _nic, _apps = run_multi(3, n_packets=1500)
        system.fabric.check_invariants()

    def test_no_buffer_leaks_across_queues(self):
        _system, nic, _apps = run_multi(3, n_packets=1500)
        stats = nic.pool.stats
        assert stats.get("alloc_bufs") == stats.get("free_bufs")

    def test_per_queue_latency_reasonable(self):
        _system, _nic, apps = run_multi(2, n_packets=2500)
        for app in apps:
            # Saturated closed loop: latency is queueing-dominated but
            # must stay within the ring-capacity envelope.
            assert app.result.latency.median < 1e6
