"""Workload distributions: Ads/Geo object sizes and Zipf keys."""

import pytest

from repro.errors import WorkloadError
from repro.sim.rng import make_rng
from repro.workloads import AdsObjectSizes, GeoObjectSizes, ObjectSizeDistribution, ZipfKeys


class TestObjectSizes:
    def test_ads_small_object_fraction(self):
        """Paper: 61% of Ads objects are under 100B."""
        dist = AdsObjectSizes()
        frac = dist.fraction_below(100, make_rng(1, "ads"))
        assert 0.55 <= frac <= 0.67

    def test_geo_small_object_fraction(self):
        """Paper: 13% of Geo objects are under 100B."""
        dist = GeoObjectSizes()
        frac = dist.fraction_below(100, make_rng(1, "geo"))
        assert 0.09 <= frac <= 0.18

    def test_sizes_capped_at_mtu(self):
        rng = make_rng(2, "cap")
        for dist in (AdsObjectSizes(), GeoObjectSizes()):
            sizes = [dist.sample(rng) for _ in range(5000)]
            assert max(sizes) <= 9600
            assert min(sizes) >= 1

    def test_geo_skews_larger_than_ads(self):
        rng_a = make_rng(3, "a")
        rng_g = make_rng(3, "g")
        ads = sum(AdsObjectSizes().sample(rng_a) for _ in range(5000))
        geo = sum(GeoObjectSizes().sample(rng_g) for _ in range(5000))
        assert geo > ads

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ObjectSizeDistribution("bad", [], 9600)
        with pytest.raises(WorkloadError):
            ObjectSizeDistribution("bad", [(0.5, 100)], 9600)  # cum != 1
        with pytest.raises(WorkloadError):
            ObjectSizeDistribution("bad", [(1.5, 100)], 9600)


class TestZipf:
    def test_skew(self):
        """With coefficient 0.75, the hottest keys dominate."""
        keys = ZipfKeys(1000, 0.75)
        assert keys.hottest_fraction(10) > 10 / 1000 * 3

    def test_samples_in_range(self):
        keys = ZipfKeys(100, 0.75)
        rng = make_rng(4, "zipf")
        samples = [keys.sample(rng) for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)

    def test_low_keys_more_popular(self):
        keys = ZipfKeys(100, 0.75)
        rng = make_rng(5, "zipf2")
        samples = [keys.sample(rng) for _ in range(20000)]
        first_decile = sum(1 for s in samples if s < 10)
        last_decile = sum(1 for s in samples if s >= 90)
        assert first_decile > 3 * last_decile

    def test_uniform_when_coefficient_zero(self):
        keys = ZipfKeys(10, 0.0)
        assert keys.hottest_fraction(1) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfKeys(0)
        with pytest.raises(WorkloadError):
            ZipfKeys(10, -1.0)

    def test_hottest_fraction_bounds(self):
        keys = ZipfKeys(10, 0.75)
        assert keys.hottest_fraction(0) == 0.0
        assert keys.hottest_fraction(10) == pytest.approx(1.0)
        assert keys.hottest_fraction(100) == pytest.approx(1.0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = [AdsObjectSizes().sample(make_rng(9, "x")) for _ in range(10)]
        b = [AdsObjectSizes().sample(make_rng(9, "x")) for _ in range(10)]
        assert a == b

    def test_labels_give_independent_streams(self):
        rng1 = make_rng(9, "one")
        rng2 = make_rng(9, "two")
        assert [rng1.random() for _ in range(5)] != [rng2.random() for _ in range(5)]
