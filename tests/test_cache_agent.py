"""Per-agent cache tag model."""

import pytest

from repro.coherence import CacheAgent, LineState
from repro.errors import CoherenceError


class TestLineState:
    def test_writable(self):
        assert LineState.MODIFIED.is_writable
        assert LineState.EXCLUSIVE.is_writable
        assert not LineState.SHARED.is_writable
        assert not LineState.FORWARD.is_writable

    def test_dirty(self):
        assert LineState.MODIFIED.is_dirty
        assert not LineState.EXCLUSIVE.is_dirty

    def test_forwarding(self):
        assert LineState.MODIFIED.can_forward
        assert LineState.EXCLUSIVE.can_forward
        assert LineState.FORWARD.can_forward
        assert not LineState.SHARED.can_forward


class TestCacheAgent:
    def test_lookup_miss_returns_none(self):
        agent = CacheAgent("a", socket=0)
        assert agent.lookup(5) is None

    def test_set_and_lookup(self):
        agent = CacheAgent("a", socket=0)
        agent.set_state(5, LineState.MODIFIED)
        assert agent.lookup(5) is LineState.MODIFIED
        assert agent.holds(5)
        assert len(agent) == 1

    def test_drop(self):
        agent = CacheAgent("a", socket=0)
        agent.set_state(5, LineState.SHARED)
        assert agent.drop(5) is LineState.SHARED
        assert agent.drop(5) is None
        assert not agent.holds(5)

    def test_lru_eviction_order(self):
        agent = CacheAgent("a", socket=0, capacity_lines=2)
        agent.set_state(1, LineState.EXCLUSIVE)
        agent.set_state(2, LineState.EXCLUSIVE)
        # Touch line 1 so line 2 becomes LRU.
        agent.lookup(1)
        agent.set_state(3, LineState.EXCLUSIVE)
        victim = agent.evict_victim()
        assert victim == (2, LineState.EXCLUSIVE)
        assert agent.evictions == 1

    def test_no_eviction_within_capacity(self):
        agent = CacheAgent("a", socket=0, capacity_lines=4)
        agent.set_state(1, LineState.SHARED)
        assert agent.evict_victim() is None

    def test_peek_does_not_touch_lru(self):
        agent = CacheAgent("a", socket=0, capacity_lines=2)
        agent.set_state(1, LineState.EXCLUSIVE)
        agent.set_state(2, LineState.EXCLUSIVE)
        agent.peek(1)  # must NOT refresh line 1
        agent.set_state(3, LineState.EXCLUSIVE)
        assert agent.evict_victim()[0] == 1

    def test_clear(self):
        agent = CacheAgent("a", socket=0)
        agent.set_state(1, LineState.MODIFIED)
        agent.stream_state[0] = 5
        agent.clear()
        assert len(agent) == 0
        assert agent.stream_state == {}

    def test_bad_capacity(self):
        with pytest.raises(CoherenceError):
            CacheAgent("a", socket=0, capacity_lines=0)

    def test_lines_iterates_lru_first(self):
        agent = CacheAgent("a", socket=0)
        agent.set_state(1, LineState.SHARED)
        agent.set_state(2, LineState.SHARED)
        agent.lookup(1)
        assert list(agent.lines()) == [2, 1]
