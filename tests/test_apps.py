"""Application studies: KV store and TAS-like RPC."""

import pytest

from repro.analysis.loopback import InterfaceKind, build_interface
from repro.apps.kvstore import KvServerApp, KvStudy, KvWorkload
from repro.apps.tas import FlowState, RpcStudy, TasFastPath
from repro.errors import WorkloadError
from repro.platform import icx


class TestKvServer:
    def make_app(self, kind=InterfaceKind.CCNIC, n_ops=400, offered=20.0):
        setup = build_interface(icx(), kind)
        return KvServerApp(setup, KvWorkload.ads(), offered_mops=offered, n_ops=n_ops)

    def test_all_ops_complete(self):
        app = self.make_app()
        result = app.run()
        assert result.ops == 400
        assert result.latency.count > 0

    def test_server_busy_time_tracked(self):
        app = self.make_app()
        app.run()
        assert app.server_busy_ns > 0
        assert app.server_ops >= 400
        assert app.per_thread_mops > 0

    def test_runs_on_pcie_interface(self):
        app = self.make_app(kind=InterfaceKind.CX6, n_ops=200)
        result = app.run()
        assert result.ops == 200

    def test_get_set_mix_validates(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        with pytest.raises(WorkloadError):
            KvServerApp(setup, KvWorkload.ads(), offered_mops=0, n_ops=10)

    def test_buffers_not_leaked(self):
        app = self.make_app(n_ops=300)
        app.run()
        pool = app.setup.interface.pool
        outstanding = pool.stats.get("alloc_bufs") - pool.stats.get("free_bufs")
        # Small slack for in-flight buffers at stop time.
        assert outstanding < 128


class TestKvStudy:
    def study(self, per_thread=5.0, peak=35.0):
        return KvStudy(kind=InterfaceKind.CCNIC, per_thread_mops=per_thread,
                       peak_mops=peak)

    def test_linear_then_capped(self):
        study = self.study()
        spec = icx()
        assert study.throughput(2, spec) == pytest.approx(10.0)
        assert study.throughput(16, spec) == 35.0

    def test_threads_to_saturate(self):
        study = self.study()
        spec = icx()
        # 0.95 * 35 = 33.25 -> ceil(33.25 / 5) = 7 threads.
        assert study.threads_to_saturate(spec) == 7

    def test_faster_threads_need_fewer(self):
        spec = icx()
        slow = self.study(per_thread=2.5)
        fast = self.study(per_thread=5.0)
        assert fast.threads_to_saturate(spec) < slow.threads_to_saturate(spec)

    def test_hyperthreads_contribute_fractionally(self):
        study = self.study(per_thread=1.0, peak=100.0)
        spec = icx()
        base = study.throughput(16, spec)
        ht = study.throughput(18, spec)
        assert base < ht < base + 2.0


class TestTasFastPath:
    def make(self, kind=InterfaceKind.CCNIC, n_ops=400):
        setup = build_interface(icx(), kind)
        return TasFastPath(setup, n_flows=16, offered_mops=30.0, n_ops=n_ops)

    def test_all_rpcs_echoed(self):
        fastpath = self.make()
        result = fastpath.run()
        assert result.ops == 400

    def test_flow_state_maintained(self):
        fastpath = self.make(n_ops=320)
        fastpath.run()
        # Every flow saw traffic and its seq advanced by 64B per packet.
        for flow in fastpath.flows.values():
            assert flow.rx_packets > 0
            assert flow.seq == flow.rx_packets * 64
            assert flow.ack == flow.seq

    def test_per_thread_rate_positive(self):
        fastpath = self.make()
        fastpath.run()
        assert fastpath.per_thread_mops > 0

    def test_flow_validation(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        with pytest.raises(WorkloadError):
            TasFastPath(setup, n_flows=0, offered_mops=10.0, n_ops=10)

    def test_flowstate_defaults(self):
        flow = FlowState(flow_id=3)
        assert flow.seq == 0 and flow.ack == 0


class TestRpcStudy:
    def test_threads_to_saturate(self):
        study = RpcStudy(kind=InterfaceKind.CCNIC, per_thread_mops=20.0,
                         peak_mops=60.0)
        assert study.threads_to_saturate() == 3

    def test_capped_throughput(self):
        study = RpcStudy(kind=InterfaceKind.CX6, per_thread_mops=10.0,
                         peak_mops=60.0)
        assert study.throughput(4) == 40.0
        assert study.throughput(10) == 60.0
