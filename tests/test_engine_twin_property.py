"""Adversarial generator behind the engine's fast/slow twin contract.

The cohort-batched ``_run_fast`` loop must be bit-identical to the
``_run_slow`` reference (the path ``REPRO_SIM_SLOWPATH=1`` selects):
same final ``now``, same ``events_executed``, and the same execution
trace fingerprint. Hypothesis drives randomly generated process
populations through both paths — mixed delays, same-timestamp ties,
mid-run spawns, ``call_at``/``call_after`` callbacks, bounded ``until``
runs, and ``stop_when`` predicates that themselves schedule work (the
case the cohort loop must re-merge into its drained cohort).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.merge import fingerprint
from repro.sim import Simulator

# A small value pool forces same-timestamp cohorts: with only a few
# distinct delays, independently scheduled events collide constantly.
_DELAYS = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0, 3.0])

_action = st.deferred(
    lambda: st.one_of(
        st.tuples(st.just("delay"), _DELAYS),
        st.tuples(st.just("call_after"), _DELAYS),
        st.tuples(st.just("call_at"), _DELAYS),
        st.tuples(st.just("spawn"), st.lists(
            st.tuples(st.just("delay"), _DELAYS), min_size=1, max_size=3,
        )),
    )
)

_program = st.fixed_dictionaries({
    "procs": st.lists(
        st.lists(_action, min_size=1, max_size=6), min_size=1, max_size=4,
    ),
    # stop_when configuration: fire a scheduling side effect on call K,
    # return True from call M on (None = never stop).
    "stop_schedule_at": st.one_of(st.none(), st.integers(1, 20)),
    "stop_after_calls": st.one_of(st.none(), st.integers(1, 30)),
    "until": st.one_of(st.none(), st.sampled_from([0.0, 1.0, 2.5, 6.0])),
})


def _run_program(program, slowpath):
    sim = Simulator(slowpath=slowpath)
    trace = []

    def make_body(label, actions):
        def body():
            for kind, arg in actions:
                if kind == "delay":
                    trace.append(["step", label, sim.now])
                    yield arg
                elif kind == "call_after":
                    sim.call_after(
                        arg,
                        lambda label=label: trace.append(["cb", label, sim.now]),
                    )
                elif kind == "call_at":
                    sim.call_at(
                        sim.now + arg,
                        lambda label=label: trace.append(["cb@", label, sim.now]),
                    )
                else:  # mid-run spawn
                    child = f"{label}+{len(trace)}"
                    sim.spawn(make_body(child, arg), child)
                    trace.append(["spawned", child, sim.now])
            trace.append(["end", label, sim.now])
        return body()

    for index, actions in enumerate(program["procs"]):
        label = f"p{index}"
        sim.spawn(make_body(label, actions), label)

    calls = [0]
    schedule_at = program["stop_schedule_at"]
    stop_after = program["stop_after_calls"]

    def stop_when():
        calls[0] += 1
        trace.append(["stop?", calls[0], sim.now])
        if calls[0] == schedule_at:
            # The adversarial case: the predicate schedules new work at
            # the current timestamp, growing the cohort mid-drain.
            sim.call_after(0.0, lambda: trace.append(["stopcb", sim.now]))
        return stop_after is not None and calls[0] >= stop_after

    end = sim.run(until=program["until"], stop_when=stop_when)
    return end, sim.events_executed, fingerprint({"trace": trace})


@settings(max_examples=60, deadline=None)
@given(program=_program)
def test_fast_and_slow_paths_are_twins(program):
    slow = _run_program(program, slowpath=True)
    fast = _run_program(program, slowpath=False)
    assert fast == slow  # (now, events_executed, trace fingerprint)
