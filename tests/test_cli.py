"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("loopback", "microbench", "counters", "kv", "rpc", "table1"):
            args = parser.parse_args([command] if command != "loopback"
                                     else ["loopback", "--packets", "10"])
            assert args.command == command

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["loopback", "--platform", "haswell"])

    def test_unknown_interface_rejected(self):
        with pytest.raises(SystemExit):
            main(["loopback", "--interface", "rdma"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Sapphire Rapids UPI" in out
        assert "192" in out

    def test_loopback_small(self, capsys):
        assert main(["loopback", "--packets", "300", "--inflight", "8",
                     "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "min latency" in out
        assert "ccnic" in out

    def test_loopback_open_loop(self, capsys):
        assert main(["loopback", "--packets", "400", "--rate", "2.0",
                     "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "throughput [Mpps]" in out

    def test_counters(self, capsys):
        assert main(["counters", "--packets", "600"]) == 0
        out = capsys.readouterr().out
        assert "read" in out

    def test_loopback_same_socket(self, capsys):
        assert main(["loopback", "--packets", "300", "--inflight", "4",
                     "--batch", "4", "--same-socket"]) == 0
        assert "loopback" in capsys.readouterr().out


class TestValidateCommand:
    def test_fast_validate(self, capsys):
        assert main(["validate", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "calibration OK" in out
        assert "fig7" in out
