"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("loopback", "microbench", "counters", "kv", "rpc", "table1"):
            args = parser.parse_args([command] if command != "loopback"
                                     else ["loopback", "--packets", "10"])
            assert args.command == command

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["loopback", "--platform", "haswell"])

    def test_unknown_interface_rejected(self):
        with pytest.raises(SystemExit):
            main(["loopback", "--interface", "rdma"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Sapphire Rapids UPI" in out
        assert "192" in out

    def test_loopback_small(self, capsys):
        assert main(["loopback", "--packets", "300", "--inflight", "8",
                     "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "min latency" in out
        assert "ccnic" in out

    def test_loopback_open_loop(self, capsys):
        assert main(["loopback", "--packets", "400", "--rate", "2.0",
                     "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "throughput [Mpps]" in out

    def test_counters(self, capsys):
        assert main(["counters", "--packets", "600"]) == 0
        out = capsys.readouterr().out
        assert "read" in out

    def test_loopback_same_socket(self, capsys):
        assert main(["loopback", "--packets", "300", "--inflight", "4",
                     "--batch", "4", "--same-socket"]) == 0
        assert "loopback" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_loopback_metrics_and_trace_out(self, capsys, tmp_path):
        from repro.obs import load_metrics_json

        metrics_path = str(tmp_path / "m.json")
        trace_path = str(tmp_path / "t.json")
        assert main(["loopback", "--packets", "300", "--inflight", "8",
                     "--batch", "4", "--metrics-out", metrics_path,
                     "--trace-out", trace_path]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        metrics = load_metrics_json(metrics_path)
        assert "fabric" in metrics and "trafficgen" in metrics
        assert metrics["trafficgen"]["received"] == 300.0
        import json
        with open(trace_path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"], "trace should contain events"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_loopback_metrics_csv(self, capsys, tmp_path):
        from repro.obs import load_metrics_csv

        path = str(tmp_path / "m.csv")
        assert main(["loopback", "--packets", "200", "--inflight", "4",
                     "--batch", "4", "--metrics-out", path]) == 0
        metrics = load_metrics_csv(path)
        assert "fabric" in metrics

    def test_counters_reads_registry(self, capsys, tmp_path):
        path = str(tmp_path / "c.json")
        assert main(["counters", "--packets", "400",
                     "--metrics-out", path]) == 0
        out = capsys.readouterr().out
        assert "read" in out
        from repro.obs import load_metrics_json
        assert "fabric" in load_metrics_json(path)


class TestProfileCommand:
    def test_profile_prints_tables(self, capsys):
        assert main(["profile", "--packets", "400", "--inflight", "16",
                     "--batch", "8", "--sample-every", "2", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Packet critical path" in out
        assert "Region-class thrash summary" in out
        assert "Top thrashing lines" in out
        assert "Homing audit" in out
        assert "Sample waterfall" in out

    def test_profile_flight_out(self, capsys, tmp_path):
        from repro.obs import load_flight_json

        path = str(tmp_path / "flight.json")
        assert main(["profile", "--packets", "300", "--inflight", "8",
                     "--batch", "4", "--flight-out", path]) == 0
        report = load_flight_json(path)
        assert report["config"]["interface"] == "ccnic"
        assert set(report["classes"]) == {
            "descriptor", "signal", "payload", "pool_meta", "other"}
        assert report["waterfall"]["completed"] == 300

    def test_loopback_flight_out(self, capsys, tmp_path):
        from repro.obs import load_flight_json

        path = str(tmp_path / "flight.json")
        assert main(["loopback", "--packets", "300", "--inflight", "8",
                     "--batch", "4", "--flight-out", path]) == 0
        report = load_flight_json(path)
        assert report["config"]["command"] == "loopback"
        assert report["line_events"]["seen"] > 0


class TestValidateCommand:
    def test_fast_validate(self, capsys):
        assert main(["validate", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "calibration OK" in out
        assert "fig7" in out


class TestShardedCli:
    def test_loopback_sharded(self, capsys):
        assert main(["loopback", "--packets", "400", "--inflight", "8",
                     "--batch", "4", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded loopback" in out
        assert "merged fingerprint" in out
        assert "received packets" in out

    def test_loopback_sharded_rejects_per_process_flags(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["loopback", "--packets", "400", "--shards", "2",
                  "--trace-out", str(tmp_path / "trace.json")])
        with pytest.raises(SystemExit):
            main(["loopback", "--packets", "400", "--shards", "2",
                  "--same-socket"])

    def test_loopback_sharded_metrics_out(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "metrics.json")
        assert main(["loopback", "--packets", "400", "--inflight", "8",
                     "--batch", "4", "--shards", "2",
                     "--metrics-out", path]) == 0
        doc = json.loads(open(path).read())
        assert "fabric" in doc["metrics"]

    def test_kv_sharded_requires_single_interface(self, capsys):
        # The default --interface both compares interfaces in one process;
        # a sharded run needs a single concrete interface.
        with pytest.raises(SystemExit):
            main(["kv", "--shards", "2", "--ops", "200"])

    def test_kv_sharded_with_ops_alias(self, capsys):
        assert main(["kv", "--shards", "2", "--interface", "ccnic",
                     "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "merged fingerprint" in out

    def test_perf_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["perf", "--quick", "--scenario", "bogus"])

    def test_perf_unknown_register_module_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["perf", "--quick", "--register", "no.such.module"])

    def test_perf_runs_registered_scenario(self, capsys, tmp_path, monkeypatch):
        import sys

        from repro.shard import scenario_names, unregister_scenario

        (tmp_path / "cli_custom_scn.py").write_text(
            "from repro.shard import ScenarioSpec, register_scenario\n"
            "register_scenario(ScenarioSpec(\n"
            "    name='cli_custom', n_packets=240, n_packets_quick=120,\n"
            "    shards=2))\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            assert main(["perf", "--quick", "--register", "cli_custom_scn",
                         "--scenario", "cli_custom", "--compare", "none",
                         "--out", str(tmp_path / "bench.json")]) == 0
            out = capsys.readouterr().out
            assert "cli_custom" in out
        finally:
            unregister_scenario("cli_custom")
            sys.modules.pop("cli_custom_scn", None)
        assert "cli_custom" not in scenario_names()


class TestCheckCommand:
    def test_lint_self_host_clean(self, capsys):
        assert main(["check"]) == 0
        assert "Lint summary" in capsys.readouterr().out

    def test_model_full_coverage_and_report(self, capsys, tmp_path):
        path = str(tmp_path / "model.json")
        assert main(["check", "--model", "--model-out", path]) == 0
        out = capsys.readouterr().out
        assert "RESULT: ok" in out
        from repro.obs.export import load_model_json

        report = load_model_json(path)
        assert report["kind"] == "model"
        assert report["coverage"]["reached"] == report["coverage"]["total"]

    def test_mutation_must_be_caught(self, capsys):
        assert main(["check", "--mutate", "skip-hitm-forward"]) == 0
        out = capsys.readouterr().out
        assert "caught" in out
        assert "reproduces on replay" in out

    def test_unknown_mutation_rejected(self, capsys):
        assert main(["check", "--mutate", "grow-extra-cache"]) == 2
        assert "unknown mutation" in capsys.readouterr().out

    def test_explore_smoke(self, capsys):
        assert main(["check", "--explore",
                     "--explore-scenario", "loopback_64b",
                     "--explore-ops", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule exploration" in out
        assert "RESULT: ok" in out
