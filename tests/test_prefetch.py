"""Hardware prefetcher model (DCU IP stride detection)."""

import pytest

from repro.coherence import CoherenceFabric, CostModel
from repro.interconnect import Link
from repro.mem import AddressSpace
from repro.sim import Simulator

COST = CostModel(
    l2_hit=5.0,
    local_cache=48.0,
    local_dram=72.0,
    remote_dram=144.0,
    remote_cache_writer_homed=114.0,
    remote_cache_reader_homed=119.0,
    local_invalidate=30.0,
    remote_invalidate=100.0,
)


def build(prefetch=True):
    sim = Simulator()
    space = AddressSpace()
    link = Link(sim, "upi", latency_ns=50.0, bandwidth_bytes_per_ns=66.0)
    fabric = CoherenceFabric(sim, space, COST, link)
    agent = fabric.new_agent("a", socket=0, capacity_lines=1024, prefetch=prefetch)
    remote = fabric.new_agent("r", socket=1, capacity_lines=1024)
    region = space.allocate("buf", 64 * 32, home=0)
    return fabric, agent, remote, region


def test_sequential_reads_trigger_prefetch():
    fabric, agent, _remote, region = build()
    fabric.read(agent, region.base, 64)
    fabric.read(agent, region.base + 64, 64)  # +1 stride detected
    # Line 2 should now be resident from the prefetch.
    assert agent.holds(region.base // 64 + 2)
    latency = fabric.read(agent, region.base + 128, 64)
    assert latency == pytest.approx(COST.l2_hit)


def test_no_prefetch_when_disabled():
    fabric, agent, _remote, region = build(prefetch=False)
    fabric.read(agent, region.base, 64)
    fabric.read(agent, region.base + 64, 64)
    assert not agent.holds(region.base // 64 + 2)


def test_non_sequential_access_does_not_prefetch():
    fabric, agent, _remote, region = build()
    fabric.read(agent, region.base, 64)
    fabric.read(agent, region.base + 256, 64)  # stride 4, not 1
    assert not agent.holds(region.base // 64 + 5)


def test_prefetch_stops_at_region_end():
    fabric, agent, _remote, region = build()
    end = region.base + region.size
    fabric.read(agent, end - 128, 64)
    fabric.read(agent, end - 64, 64)
    # The next line is outside the region; nothing to prefetch.
    assert not agent.holds(end // 64)


def test_prefetch_steals_remote_dirty_line():
    """The harmful contention of §3.3: a consumer's prefetch pulls the
    line a remote producer is still writing, forcing the producer to
    re-acquire ownership."""
    fabric, agent, remote, region = build()
    # The remote producer writes line 2 (is mid-burst).
    fabric.write(remote, region.base + 128, 64)
    # The local consumer streams lines 0,1 -> prefetches line 2 (HitM).
    fabric.read(agent, region.base, 64)
    fabric.read(agent, region.base + 64, 64)
    assert agent.holds(region.base // 64 + 2)
    assert not remote.holds(region.base // 64 + 2)
    # The producer's next write to its own buffer is now a remote miss.
    before = fabric.counters.get("s1.rfo")
    fabric.write(remote, region.base + 128, 8)
    assert fabric.counters.get("s1.rfo") == before + 1


def test_prefetch_counters():
    fabric, agent, _remote, region = build()
    fabric.read(agent, region.base, 64)
    fabric.read(agent, region.base + 64, 64)
    assert fabric.counters.get("s0.prefetch_local") == 1
