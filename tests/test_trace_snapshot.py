"""Tracing and cache-state inspection utilities."""

import pytest

from repro.coherence.snapshot import census, dirty_lines, sharing_degree
from repro.platform import System, icx
from repro.sim.trace import TraceEvent, Tracer


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer(capacity=10)
        tracer.record(5.0, "read", "host", "x")
        tracer.record(15.0, "write", "nic", "y")
        assert len(tracer) == 2
        assert tracer.between(0, 10)[0].category == "read"
        assert tracer.by_category("write")[0].actor == "nic"

    def test_capacity_rolls_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(float(i), "c", "a", str(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.events()[0].detail == "2"

    def test_filters(self):
        tracer = Tracer()
        tracer.add_filter(lambda e: e.actor == "host")
        tracer.record(1.0, "read", "host", "kept")
        tracer.record(2.0, "read", "nic", "dropped")
        assert len(tracer) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_attach_fabric_records_accesses(self):
        system = System(icx())
        agent = system.new_host_core("h")
        region = system.alloc_host("buf", 256)
        tracer = Tracer()
        with tracer.attach_fabric(system.fabric):
            system.fabric.read(agent, region.base, 64)
            system.fabric.write(agent, region.base + 64, 8)
        assert len(tracer) == 2
        assert tracer.by_category("read")[0].actor == "h"
        assert "buf" in tracer.by_category("write")[0].detail
        # Detached afterwards: no further recording.
        system.fabric.read(agent, region.base, 8)
        assert len(tracer) == 2

    def test_event_str(self):
        event = TraceEvent(when=12.5, category="read", actor="h", detail="d")
        assert "read" in str(event) and "12.5" in str(event)


class TestSnapshot:
    def build(self):
        system = System(icx())
        host = system.new_host_core("host")
        nic = system.new_nic_core("nic")
        region = system.alloc_host("buf", 64 * 8)
        return system, host, nic, region

    def test_census_counts_states(self):
        system, host, nic, region = self.build()
        system.fabric.write(host, region.base, 64)           # host M
        system.fabric.read(nic, region.base + 64, 64)        # nic E
        result = census(system.fabric, region)
        assert result.total_lines == 8
        assert result.uncached_lines == 6
        assert result.lines_held_by("host") == 1
        assert result.by_agent["nic"] == {"E": 1}
        assert 0 < result.cached_fraction < 1

    def test_dirty_lines(self):
        system, host, _nic, region = self.build()
        system.fabric.write(host, region.base, 128)
        assert dirty_lines(system.fabric, region) == 2

    def test_sharing_degree(self):
        system, host, nic, region = self.build()
        system.fabric.read(host, region.base, 64)
        system.fabric.read(nic, region.base, 64)   # shared by both
        assert sharing_degree(system.fabric, region) == pytest.approx(2.0)

    def test_empty_region(self):
        system, _host, _nic, region = self.build()
        result = census(system.fabric, region)
        assert result.cached_fraction == 0.0
        assert sharing_degree(system.fabric, region) == 0.0

    def test_census_str(self):
        system, host, _nic, region = self.build()
        system.fabric.write(host, region.base, 64)
        text = str(census(system.fabric, region))
        assert "buf" in text and "host" in text
