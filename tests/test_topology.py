"""Tests for repro.topology: generators, routing, runtime net, determinism."""

import json

import pytest

from repro.errors import ConfigError
from repro.interconnect import MessageClass
from repro.obs.export import export_topology_json, load_topology_json
from repro.shard import run_sharded, scenario, scenario_names
from repro.sim import Simulator
from repro.topology import (
    EdgeSpec,
    NodeSpec,
    RouteTables,
    TopologyNet,
    TopologySpec,
    fat_tree,
    mesh,
    register_topology,
    single_switch,
    topology,
    topology_names,
    torus,
    unregister_topology,
)


def all_generated():
    return [single_switch(8), mesh(2, 3), torus(4, 4), fat_tree(4)]


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
class TestGenerators:
    @pytest.mark.parametrize("spec,hosts", [
        (single_switch(8), 8),
        (mesh(2, 3), 6),
        (torus(4, 4), 16),
        (fat_tree(4), 16),
    ])
    def test_host_count_and_validity(self, spec, hosts):
        spec.validate()  # generators return pre-validated specs
        assert len(spec.host_names()) == hosts
        assert sum(1 for n in spec.nodes if n.kind == "tor") == 1

    def test_round_trip_every_generator(self):
        for spec in all_generated():
            doc = spec.to_doc()
            json.dumps(doc)  # JSON-safe
            assert TopologySpec.from_doc(doc) == spec

    def test_from_doc_rejects_unknown_fields(self):
        doc = single_switch(2).to_doc()
        doc["wat"] = 1
        with pytest.raises(ConfigError):
            TopologySpec.from_doc(doc)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ConfigError):
            single_switch(0)
        with pytest.raises(ConfigError):
            mesh(0, 3)
        with pytest.raises(ConfigError):
            fat_tree(3)  # odd k

    def test_torus_wraparound_collapse(self):
        # Width-2 wraparound lands on the existing mesh edge; the
        # generator must dedupe rather than emit a duplicate pair.
        spec = torus(2, 2)
        pairs = [tuple(sorted((e.a, e.b))) for e in spec.edges]
        assert len(pairs) == len(set(pairs))

    def test_validate_catches_bad_graphs(self):
        tor = NodeSpec(name="tor0", kind="tor")
        h = NodeSpec(name="h0", kind="host")
        edge = EdgeSpec(a="h0", b="tor0", latency_ns=10.0, gbps=100.0)
        with pytest.raises(ConfigError):  # no tor
            TopologySpec(name="x", nodes=(h,), edges=()).validate()
        with pytest.raises(ConfigError):  # disconnected host
            TopologySpec(
                name="x",
                nodes=(h, NodeSpec(name="h1"), tor),
                edges=(edge,),
            ).validate()
        with pytest.raises(ConfigError):  # self loop
            TopologySpec(
                name="x", nodes=(h, tor),
                edges=(EdgeSpec(a="h0", b="h0", latency_ns=1.0, gbps=1.0),),
            ).validate()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_route_tables_are_deterministic(self):
        for spec in all_generated():
            first = RouteTables.build(spec).to_doc()
            second = RouteTables.build(spec).to_doc()
            assert first == second

    def test_rack_paths_are_two_hops_host_to_host(self):
        tables = RouteTables.build(single_switch(4))
        assert tables.path("h0", "h3") == ("h0", "tor0", "h3")
        assert tables.path("h2", "tor0") == ("h2", "tor0")

    def test_torus_never_longer_than_mesh(self):
        mesh_tables = RouteTables.build(mesh(4, 4))
        torus_tables = RouteTables.build(torus(4, 4))
        for src in ("h0_0", "h3_3"):
            for dst in ("h0_3", "h3_0", "tor0"):
                assert (
                    torus_tables.hop_count(src, dst)
                    <= mesh_tables.hop_count(src, dst)
                )

    def test_unknown_endpoint_raises(self):
        tables = RouteTables.build(single_switch(2))
        with pytest.raises(ConfigError):
            tables.path("h0", "h9")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestTopologyRegistry:
    def test_builtins_registered(self):
        names = topology_names()
        for name in ("rack8", "mesh_2x2", "torus_4x4", "fat_tree_4"):
            assert name in names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigError, match="rack8"):
            topology("nope")

    def test_register_and_unregister(self):
        spec = single_switch(3, name="test_rack3")
        try:
            register_topology(spec)
            assert topology("test_rack3") is spec
            with pytest.raises(ConfigError):
                register_topology(spec)
            register_topology(spec, replace=True)
        finally:
            unregister_topology("test_rack3")
        assert "test_rack3" not in topology_names()


# ----------------------------------------------------------------------
# Runtime net and router
# ----------------------------------------------------------------------
class TestTopologyNet:
    def test_charge_accumulates_per_edge_stats(self):
        sim = Simulator()
        net = TopologyNet(sim, single_switch(2))
        delay = net.router.charge(
            "h0", "h1", MessageClass.DMA_WRITE, payload_bytes=256, actor="a"
        )
        # Two hops, each at least the edge's propagation latency.
        assert delay >= 2 * 70.0
        flat = net.stats_flat()
        assert flat["h0~tor0:0:messages"] == 1
        assert flat["h1~tor0:1:messages"] == 1
        assert flat["h0~tor0:0:wire"] > 256

    def test_no_edge_raises(self):
        sim = Simulator()
        net = TopologyNet(sim, mesh(2, 2))
        with pytest.raises(ConfigError):
            net.hop("h0_0", "h1_1")  # not adjacent

    def test_stats_report_export_round_trip(self, tmp_path):
        sim = Simulator()
        net = TopologyNet(sim, single_switch(2))
        net.router.charge("h0", "tor0", MessageClass.DMA_WRITE, payload_bytes=64)
        report = net.stats_report(config={"pkt": 64})
        path = tmp_path / "topo.json"
        export_topology_json(report, str(path))
        assert load_topology_json(str(path)) == report
        with pytest.raises(ValueError):
            load_topology_json(__file__)  # not a stamped report


# ----------------------------------------------------------------------
# Scenario spec integration
# ----------------------------------------------------------------------
class TestTopologySpecs:
    def test_rack_scenarios_registered(self):
        names = scenario_names()
        assert "kv_rack_zipf" in names
        assert "mesh_2x2_loopback" in names

    def test_partition_must_match_host_count(self):
        spec = scenario("kv_rack_zipf")
        with pytest.raises(ConfigError, match="shards"):
            spec.replace(shards=3).validate()

    def test_host_index_range_checked(self):
        spec = scenario("kv_rack_zipf")
        with pytest.raises(ConfigError):
            spec.replace(host_index=8).validate()

    def test_host_index_requires_topology(self):
        spec = scenario("kv_zipf")
        with pytest.raises(ConfigError):
            spec.replace(host_index=0).validate()

    def test_rack_kv_needs_clients(self):
        spec = scenario("kv_rack_zipf")
        with pytest.raises(ConfigError, match="n_clients"):
            spec.replace(n_clients=0).validate()

    def test_children_carry_host_index(self):
        children = scenario("kv_rack_zipf").shard_specs()
        assert [c.host_index for c in children] == list(range(8))


# ----------------------------------------------------------------------
# End-to-end determinism (S3)
# ----------------------------------------------------------------------
class TestTopologyDeterminism:
    def test_kv_rack_fingerprint_invariant_under_workers(self):
        spec = scenario("kv_rack_zipf")
        runs = {
            workers: run_sharded(spec, workers=workers, quick=True)
            for workers in (1, 2, 4)
        }
        fingerprints = {run.fingerprint for run in runs.values()}
        assert len(fingerprints) == 1
        docs = [run.doc for run in runs.values()]
        assert docs[0] == docs[1] == docs[2]
        topo = runs[1].doc["merged"]["topology"]
        # All eight host edges carried traffic in both directions.
        for host in range(8):
            assert topo[f"h{host}~tor0:0:messages"] > 0
            assert topo[f"h{host}~tor0:1:messages"] > 0

    def test_mesh_loopback_reports_fabric_stats(self):
        run = run_sharded(scenario("mesh_2x2_loopback"), workers=1, quick=True)
        topo = run.doc["merged"]["topology"]
        assert topo["h0_0~s0_0:0:messages"] > 0
        assert topo["s0_0~tor0:0:messages"] > 0

    def test_edge_degrade_fault_plan(self, tmp_path):
        plan = {
            "name": "edge_degrade",
            "events": [{
                "kind": "link_degrade",
                "start_ns": 0.0,
                "factor": 0.5,
                "target": "edge:h0~tor0",
            }],
        }
        path = tmp_path / "edge_degrade.json"
        path.write_text(json.dumps(plan))
        spec = scenario("kv_rack_zipf").replace(fault_plan=str(path))
        degraded = {
            workers: run_sharded(spec, workers=workers, quick=True)
            for workers in (1, 2)
        }
        assert degraded[1].fingerprint == degraded[2].fingerprint
        assert degraded[1].doc == degraded[2].doc
        clean = run_sharded(scenario("kv_rack_zipf"), workers=1, quick=True)
        busy = lambda run, edge: run.doc["merged"]["topology"][f"{edge}:0:busy"]  # noqa: E731
        # Halving h0's uplink bandwidth doubles its serialization time...
        assert busy(degraded[1], "h0~tor0") > busy(clean, "h0~tor0")
        # ...while the targeted plan leaves every other edge untouched.
        assert busy(degraded[1], "h1~tor0") == busy(clean, "h1~tor0")
