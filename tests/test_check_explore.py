"""Cohort-schedule explorer: DFS mechanics, pruning, real-run stability.

``explore_plans`` is exercised both synthetically (toy run_schedule
callables that fake choice points, to pin the DFS / partial-order /
truncation mechanics) and against a real racy :class:`Simulator` whose
outcome genuinely depends on intra-cohort dispatch order — proving the
chooser hook surfaces real schedule sensitivity. ``check_explore``
then runs the registered scenarios at a small scope and must find one
fingerprint across every non-bootstrap schedule, sanitizer-clean.
"""

import pytest

from repro.check import check_explore, explore_plans, replay_schedule
from repro.check.explore import _PlanChooser, _scoped_spec
from repro.errors import ConfigError
from repro.obs.export import MODEL_SCHEMA
from repro.shard.merge import fingerprint, merge_results
from repro.shard.runner import execute_spec, lookahead_ns
from repro.shard.spec import scenario
from repro.sim.engine import Simulator


def _point(size, when=1.0, footprints=None):
    return {
        "when": when,
        "size": size,
        "bootstrap": when == 0.0,
        "footprints": footprints or [None] * size,
    }


class TestExplorePlans:
    def test_canonical_first_then_single_deviations(self):
        points = [_point(3), _point(2)]
        runs = []

        def run_schedule(plan):
            runs.append(dict(plan))
            return {"order": sorted(plan.items())}, points

        schedules, pruned, truncated = explore_plans(run_schedule)
        assert runs[0] == {}
        assert schedules[0]["plan"] == {}
        plans = [s["plan"] for s in schedules[1:]]
        # One deviation allowed: every non-canonical index at each point.
        assert {tuple(sorted(p.items())) for p in plans} == {
            ((0, 1),), ((0, 2),), ((1, 1),),
        }
        assert pruned == 0
        assert not truncated

    def test_bootstrap_cohorts_are_marked(self):
        points = [_point(2, when=0.0), _point(2, when=5.0)]

        def run_schedule(plan):
            return {}, points

        schedules, _pruned, _truncated = explore_plans(run_schedule)
        by_plan = {
            tuple(sorted(s["plan"].items())): s["bootstrap"] for s in schedules
        }
        assert by_plan[()] is False
        assert by_plan[((0, 1),)] is True
        assert by_plan[((1, 1),)] is False

    def test_disjoint_footprints_are_pruned(self):
        # The candidate's footprint is disjoint from everything ahead
        # of it in the cohort, so dispatching it first provably
        # commutes — the deviation is pruned, not executed.
        points = [
            _point(2, footprints=[frozenset({"a"}), frozenset({"b"})]),
        ]
        runs = []

        def run_schedule(plan):
            runs.append(dict(plan))
            return {}, points

        schedules, pruned, _truncated = explore_plans(run_schedule)
        assert len(schedules) == 1
        assert pruned == 1
        assert runs == [{}]

    def test_overlapping_footprints_are_explored(self):
        points = [
            _point(2, footprints=[frozenset({"a"}), frozenset({"a", "b"})]),
        ]

        def run_schedule(plan):
            return {}, points

        schedules, pruned, _truncated = explore_plans(run_schedule)
        assert len(schedules) == 2
        assert pruned == 0

    def test_none_footprint_never_prunes(self):
        points = [_point(2, footprints=[frozenset({"a"}), None])]

        def run_schedule(plan):
            return {}, points

        schedules, pruned, _truncated = explore_plans(run_schedule)
        assert len(schedules) == 2
        assert pruned == 0

    def test_max_schedules_truncates(self):
        points = [_point(4), _point(4)]

        def run_schedule(plan):
            return {}, points

        schedules, _pruned, truncated = explore_plans(
            run_schedule, max_schedules=3
        )
        assert truncated
        assert len(schedules) == 3

    def test_deviation_budget_bounds_depth(self):
        points = [_point(2), _point(2)]

        def run_schedule(plan):
            return {}, points

        schedules, _pruned, _truncated = explore_plans(
            run_schedule, max_deviations=2
        )
        plans = {tuple(sorted(s["plan"].items())) for s in schedules}
        assert ((0, 1), (1, 1)) in plans  # two deviations reached
        one_dev, _p, _t = explore_plans(run_schedule, max_deviations=1)
        assert ((0, 1), (1, 1)) not in {
            tuple(sorted(s["plan"].items())) for s in one_dev
        }


class TestPlanChooser:
    def _records(self, n, when=1.0):
        return [[when, seq, 0, None] for seq in range(n)]

    def test_canonical_plan_picks_index_zero(self):
        chooser = _PlanChooser({})
        assert chooser(1.0, self._records(3)) == 0
        assert chooser.points[0]["size"] == 3
        assert chooser.points[0]["bootstrap"] is False

    def test_plan_deviation_applied_at_its_ordinal(self):
        chooser = _PlanChooser({1: 2})
        assert chooser(1.0, self._records(3)) == 0
        assert chooser(2.0, self._records(3)) == 2

    def test_out_of_range_choice_degrades_to_canonical(self):
        # A plan recorded against a larger cohort must not crash a
        # replay where the cohort shrank; it degrades to index 0.
        chooser = _PlanChooser({0: 5})
        assert chooser(1.0, self._records(2)) == 0

    def test_bootstrap_flagged_at_time_zero(self):
        chooser = _PlanChooser({})
        chooser(0.0, self._records(2))
        assert chooser.points[0]["bootstrap"] is True


class TestRacySimulatorDivergence:
    """A genuinely order-sensitive sim diverges under deviated plans."""

    def _run_schedule(self, plan):
        order = []
        sim = Simulator()
        for name in ("alpha", "beta", "gamma"):
            sim.spawn(
                self._body(order, name),
                name=name,
                delay=1.0,
                footprint=frozenset({"shared"}),
            )
        chooser = _PlanChooser(plan)
        previous = Simulator.chooser
        Simulator.chooser = chooser
        try:
            sim.run()
        finally:
            Simulator.chooser = previous
        return {"fingerprint": "/".join(order)}, chooser.points

    @staticmethod
    def _body(order, name):
        order.append(name)
        return
        yield  # pragma: no cover - makes this a generator function

    def test_deviated_schedules_expose_the_race(self):
        schedules, pruned, truncated = explore_plans(self._run_schedule)
        assert not truncated
        assert pruned == 0  # identical footprints never commute
        fingerprints = {s["outcome"]["fingerprint"] for s in schedules}
        canonical = schedules[0]["outcome"]["fingerprint"]
        assert canonical == "alpha/beta/gamma"
        assert len(fingerprints) > 1
        # Deviations happen at t=1.0, so none of this is bootstrap.
        assert all(s["bootstrap"] is False for s in schedules[1:])


class TestCheckExplore:
    @pytest.fixture(scope="class")
    def report(self):
        return check_explore(ops=24)

    def test_default_scope_is_stable_and_clean(self, report):
        assert report["ok"]
        assert report["counterexamples"] == []
        for entry in report["scenarios"]:
            assert entry["fingerprints"] == [entry["canonical_fingerprint"]]
            assert not entry["truncated"]
            assert entry["choice_points"] >= 1

    def test_bootstrap_divergence_is_informational(self, report):
        # The only ties in these scenarios are the t=0 first-step
        # cohorts; permuting them changes results (documented scope
        # bound) but is reported, not failed.
        assert any(e["bootstrap_divergent"] > 0 for e in report["scenarios"])
        assert report["ok"]

    def test_schema_and_scope_recorded(self, report):
        assert report["schema"] == MODEL_SCHEMA
        assert report["kind"] == "explore"
        assert report["scope"]["ops"] == 24
        assert report["scope"]["sanitize"] is True
        assert {e["scenario"] for e in report["scenarios"]} == {
            "loopback_64b", "kv_zipf",
        }

    def test_canonical_schedule_matches_bare_run(self, report):
        # Driving the engine through the chooser with an empty plan
        # must be observationally identical to no chooser at all.
        spec = _scoped_spec(scenario("loopback_64b"), 24)
        result = execute_spec(spec)
        merged = merge_results(
            [dict(result, index=0)], spec.name, lookahead_ns(spec)
        )
        entry = next(
            e for e in report["scenarios"] if e["scenario"] == "loopback_64b"
        )
        assert fingerprint(merged) == entry["canonical_fingerprint"]

    def test_ops_validated(self):
        with pytest.raises(ConfigError):
            check_explore(ops=0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            check_explore(scenarios=("no-such-scenario",), ops=4)

    def test_replay_index_without_counterexamples(self, report):
        with pytest.raises(ConfigError):
            replay_schedule(report, 0)
