"""Tests for the sharded-run layer: specs, partition, merge, determinism."""

import json
import random

import pytest

from repro.errors import ConfigError
from repro.obs import merge_snapshots
from repro.shard import (
    ScenarioSpec,
    execute_spec,
    fingerprint,
    lookahead_ns,
    merge_results,
    register_scenario,
    run_shard,
    run_sharded,
    scenario,
    scenario_names,
    unregister_scenario,
)
from repro.sim.rng import derive_seed


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for name in ("loopback_64b", "kv_zipf", "faults_canned", "kv_zipf_1m"):
            assert name in names

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            scenario("nope")

    def test_register_duplicate_raises(self):
        with pytest.raises(ConfigError):
            register_scenario(ScenarioSpec(name="loopback_64b"))

    def test_register_and_unregister_custom(self):
        spec = ScenarioSpec(name="custom_test_scn", n_packets=100, shards=2)
        try:
            register_scenario(spec)
            assert scenario("custom_test_scn") is spec
            # replace=True overwrites without raising.
            register_scenario(spec.replace(n_packets=200), replace=True)
            assert scenario("custom_test_scn").n_packets == 200
        finally:
            unregister_scenario("custom_test_scn")
        assert "custom_test_scn" not in scenario_names()


# ----------------------------------------------------------------------
# Spec validation and serialization
# ----------------------------------------------------------------------
class TestSpec:
    def test_doc_round_trip(self):
        spec = scenario("kv_zipf")
        doc = spec.to_doc()
        json.dumps(doc)  # JSON-safe
        assert ScenarioSpec.from_doc(doc) == spec

    def test_round_trip_all_shards(self):
        for name in scenario_names():
            for shard in scenario(name).shard_specs():
                assert ScenarioSpec.from_doc(shard.to_doc()) == shard

    def test_from_doc_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            ScenarioSpec.from_doc({"name": "x", "wat": 1})

    @pytest.mark.parametrize("changes", [
        {"workload": "quantum"},
        {"platform": "haswell"},
        {"interface": "rdma"},
        {"shards": 0},
        {"workload": "loopback", "n_packets": 2, "shards": 4},
        {"workload": "kv", "distribution": "uniform"},
        {"workload": "kv", "n_keys": 2, "shards": 4},
    ])
    def test_validate_rejects(self, changes):
        base = dict(name="bad", n_packets=100, n_ops=100)
        base.update(changes)
        with pytest.raises(ConfigError):
            ScenarioSpec(**base).validate()

    def test_quick_count(self):
        spec = ScenarioSpec(name="q", n_packets=1000, n_packets_quick=50)
        assert spec.count(quick=False) == 1000
        assert spec.count(quick=True) == 50
        # Without a quick size the full count is used.
        assert ScenarioSpec(name="q2", n_packets=70).count(quick=True) == 70


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_counts_split_exactly(self):
        spec = ScenarioSpec(name="p", n_packets=1003, n_packets_quick=101, shards=8)
        shards = spec.shard_specs()
        assert len(shards) == 8
        assert sum(s.n_packets for s in shards) == 1003
        assert sum(s.n_packets_quick for s in shards) == 101
        # Remainder lands on the lowest indices.
        sizes = [s.n_packets for s in shards]
        assert sizes == sorted(sizes, reverse=True)
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_identity(self):
        spec = ScenarioSpec(name="one", shards=1)
        assert spec.shard_specs() == [spec]

    def test_kv_key_ranges_disjoint_and_cover(self):
        spec = scenario("kv_zipf_1m")
        shards = spec.shard_specs()
        assert len(shards) == spec.shards == 32
        spans = sorted((s.key_base, s.key_base + s.n_keys) for s in shards)
        assert spans[0][0] == 0
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(spans, spans[1:]):
            assert hi_a == lo_b  # contiguous, no overlap
        assert spans[-1][1] == spec.n_keys == 1 << 20
        assert spec.total_flows >= 1_000_000

    def test_per_shard_seeds_are_derived_and_distinct(self):
        spec = scenario("loopback_64b")
        shards = spec.shard_specs()
        seeds = [s.seed for s in shards]
        assert len(set(seeds)) == len(seeds)
        assert seeds[3] == derive_seed(spec.seed, spec.shard_label(3))
        # Derivation is stable: a second partition yields the same family.
        assert [s.seed for s in spec.shard_specs()] == seeds

    def test_offered_rate_splits(self):
        spec = ScenarioSpec(name="r", n_packets=800, offered_mpps=40.0, shards=4)
        assert all(s.offered_mpps == 10.0 for s in spec.shard_specs())

    def test_children_are_unsharded(self):
        for child in scenario("faults_canned").shard_specs():
            assert child.shards == 1
            assert child.fault_plan == "canned"


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _fake_result(index, received, latency, events=10, now=100.0):
    return {
        "index": index,
        "snapshot": {
            "received": received,
            "dropped": 0,
            "mpps": received / 100.0,
            "median_ns": 1.0,
            "p99_ns": 2.0,
            "counters": {"s1.read": float(index + 1)},
            "events": events,
            "now": now,
            "link": [{"messages": 5, "payload": 64, "wire": 80, "busy": 7.0,
                      "by_class": {"data": 3.0}, "wire_by_class": {"data": 60.0}}],
        },
        "latency_ns": latency,
        "extra": {"packets": float(received)},
        "metrics": None,
    }


class TestMerge:
    def test_order_independent_fingerprint(self):
        results = [
            _fake_result(0, 10, [1.0, 2.0], now=100.0),
            _fake_result(1, 20, [3.0], now=90.0),
            _fake_result(2, 30, [0.5, 9.0], now=110.0),
        ]
        doc_a = merge_results(results, "t", 50.0)
        shuffled = list(results)
        random.Random(3).shuffle(shuffled)
        doc_b = merge_results(shuffled, "t", 50.0)
        assert doc_a == doc_b
        assert fingerprint(doc_a) == fingerprint(doc_b)

    def test_merge_semantics(self):
        doc = merge_results(
            [_fake_result(0, 10, [4.0], now=90.0),
             _fake_result(1, 20, [2.0], now=110.0)],
            "t", 50.0,
        )
        merged = doc["merged"]
        assert merged["received"] == 30           # sums
        assert merged["now"] == 110.0             # concurrent virtual time
        assert merged["counters"] == {"s1.read": 3.0}
        assert merged["link"][0]["messages"] == 10
        assert merged["link"][0]["by_class"] == {"data": 6.0}
        # Quantiles are recomputed from the pooled samples, not averaged.
        assert merged["median_ns"] == 3.0
        assert merged["latency_count"] == 2
        assert doc["n_shards"] == 2
        assert doc["lookahead_ns"] == 50.0

    def test_duplicate_index_rejected(self):
        with pytest.raises(ConfigError):
            merge_results(
                [_fake_result(0, 1, []), _fake_result(0, 2, [])], "t", 1.0
            )

    def test_missing_index_rejected(self):
        with pytest.raises(ConfigError):
            merge_results(
                [_fake_result(0, 1, []), _fake_result(2, 2, [])], "t", 1.0
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            merge_results([], "t", 1.0)


class TestMetricSnapshotMerge:
    def test_suffix_semantics(self):
        a = {"drv": {"lat.min": 1.0, "lat.max": 5.0, "lat.mean": 2.0,
                     "lat.count": 2.0, "tx": 10.0}}
        b = {"drv": {"lat.min": 0.5, "lat.max": 9.0, "lat.mean": 4.0,
                     "lat.count": 6.0, "tx": 30.0}}
        merged = merge_snapshots([a, b])["drv"]
        assert merged["lat.min"] == 0.5
        assert merged["lat.max"] == 9.0
        assert merged["lat.count"] == 8.0
        assert merged["tx"] == 40.0
        # Count-weighted mean: (2*2 + 4*6) / 8.
        assert merged["lat.mean"] == pytest.approx(3.5)

    def test_disjoint_components_union(self):
        merged = merge_snapshots([{"a": {"x": 1.0}}, {"b": {"y": 2.0}}])
        assert merged == {"a": {"x": 1.0}, "b": {"y": 2.0}}


# ----------------------------------------------------------------------
# End-to-end determinism: worker count must not change the fingerprint
# ----------------------------------------------------------------------
class TestShardedDeterminism:
    @pytest.mark.parametrize("name", ["loopback_64b", "kv_zipf", "faults_canned"])
    def test_workers_do_not_change_fingerprint(self, name):
        sequential = run_sharded(name, workers=1, quick=True)
        parallel = run_sharded(name, workers=2, quick=True)
        assert sequential.fingerprint == parallel.fingerprint
        assert sequential.doc == parallel.doc
        assert sequential.n_shards == parallel.n_shards

    def test_four_workers_loopback(self):
        base = run_sharded("loopback_64b", workers=1, quick=True)
        wide = run_sharded("loopback_64b", workers=4, quick=True)
        assert base.fingerprint == wide.fingerprint
        assert wide.workers == 4

    def test_all_offered_packets_complete(self):
        run = run_sharded("loopback_64b", workers=2, quick=True)
        assert run.extra["packets"] == 4000.0
        assert run.doc["merged"]["received"] == 4000

    def test_shard_result_is_json_safe(self):
        spec = scenario("loopback_64b").shard_specs()[0]
        result = run_shard(0, spec.to_doc(), quick=True)
        json.dumps(result)  # crosses process/serialization boundaries intact

    def test_execute_spec_matches_run_shard(self):
        spec = scenario("kv_zipf").shard_specs()[2]
        direct = execute_spec(spec, quick=True)
        via_doc = run_shard(2, spec.to_doc(), quick=True)
        assert direct["snapshot"] == via_doc["snapshot"]

    def test_metrics_merge_across_workers(self):
        one = run_sharded("kv_zipf", workers=1, quick=True, with_metrics=True)
        two = run_sharded("kv_zipf", workers=2, quick=True, with_metrics=True)
        assert one.metrics == two.metrics
        assert "fabric" in one.metrics

    def test_lookahead_is_link_latency(self):
        from repro.platform import icx

        assert lookahead_ns(scenario("loopback_64b")) == icx().upi_latency_ns
        pcie = ScenarioSpec(name="p", interface="cx6", n_packets=100)
        assert lookahead_ns(pcie) == icx().nic("cx6").pcie_one_way_ns


# ----------------------------------------------------------------------
# perf harness integration
# ----------------------------------------------------------------------
class TestPerfSharded:
    def test_run_scenario_workers_fingerprint_stable(self):
        from repro.analysis import perf

        one = perf.run_scenario("loopback_64b", quick=True, workers=1)
        two = perf.run_scenario("loopback_64b", quick=True, workers=2)
        assert one.fingerprint == two.fingerprint
        assert two.workers == 2 and two.n_shards == 8

    def test_run_suite_sharded_compare(self):
        from repro.analysis import perf

        doc = perf.run_suite(
            ["loopback_64b"], quick=True, compare=("loopback_64b",), shards=2
        )
        entry = doc["scenarios"]["loopback_64b"]
        assert doc["shards"] == 2
        assert entry["deterministic"] is True
        assert entry["single_process"]["fingerprint"] == entry["fingerprint"]
        assert perf.check_regression(doc, {"scenarios": {}}) == []

    def test_check_regression_uses_sharded_floor(self):
        from repro.analysis import perf

        doc = {
            "shards": 2,
            "scenarios": {"loopback_64b": {"events_per_sec": 500.0}},
        }
        baseline = {
            "scenarios": {
                "loopback_64b": {
                    "events_per_sec": 26000.0,
                    "sharded": {"events_per_sec": 600.0},
                }
            }
        }
        # 500 clears the sharded floor (600 * 0.7) but not the default.
        assert perf.check_regression(doc, baseline) == []
        doc["shards"] = 1
        assert len(perf.check_regression(doc, baseline)) == 1

    def test_check_regression_reports_parallel_divergence(self):
        from repro.analysis import perf

        doc = {
            "shards": 2,
            "scenarios": {
                "loopback_64b": {
                    "events_per_sec": 1e9,
                    "fingerprint": "aaaa",
                    "deterministic": False,
                    "single_process": {"fingerprint": "bbbb"},
                }
            },
        }
        failures = perf.check_regression(doc, {"scenarios": {}})
        assert len(failures) == 1
        assert "parallel and single-process" in failures[0]
        assert "aaaa" in failures[0] and "bbbb" in failures[0]
