"""Analysis harnesses: microbenchmarks, scaling model, tables."""

import pytest

from repro.analysis import InterfaceKind, build_interface, format_table
from repro.analysis.microbench import (
    PINGPONG_CASES,
    access_latency_cases,
    mmio_read_latency,
    pingpong,
    wc_store_latency,
    wc_write_throughput,
)
from repro.analysis.scaling import ScalingModel, build_scaling_model
from repro.platform import icx, spr


class TestAccessLatency:
    """Fig 7 — these are direct calibration checks against the paper."""

    def test_icx_values(self):
        cases = access_latency_cases(icx())
        assert cases["L DRAM"] == pytest.approx(72.0)
        assert cases["R DRAM"] == pytest.approx(144.0)
        assert cases["L L2"] == pytest.approx(48.0)
        assert cases["R L2 (rh)"] == pytest.approx(114.0)
        assert cases["R L2 (lh)"] == pytest.approx(119.0, abs=3.0)

    def test_spr_values(self):
        cases = access_latency_cases(spr())
        assert cases["L DRAM"] == pytest.approx(108.0)
        assert cases["R DRAM"] == pytest.approx(191.0)
        assert cases["R L2 (rh)"] == pytest.approx(171.0)

    def test_remote_cache_beats_remote_dram(self):
        """The paper's key Fig 7 observation."""
        for spec in (icx(), spr()):
            cases = access_latency_cases(spec)
            assert cases["R L2 (rh)"] < cases["R DRAM"]
            assert cases["R L2 (lh)"] < cases["R DRAM"]


class TestPingpong:
    def test_colocated_beats_separate_lines(self):
        """Fig 8: one-line two-way communication wins by 1.7-2.4x on
        hardware; the model must preserve the ordering and a clear gap."""
        separate = pingpong(icx(), "Wr", 120).median
        colocated = pingpong(icx(), "S0C", 120).median
        assert colocated < separate
        assert separate / colocated > 1.3

    def test_all_cases_run(self):
        for case in PINGPONG_CASES:
            h = pingpong(icx(), case, 40)
            assert h.count == 40
            assert h.median > 0

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            pingpong(icx(), "bogus")


class TestWcMicrobenches:
    def test_mmio_read_calibration(self):
        lat = mmio_read_latency(icx())
        assert lat["8B"] == pytest.approx(982.0)
        assert lat["64B"] == pytest.approx(1026.0, abs=5.0)

    def test_fig2_throughput_rises_with_barrier_size(self):
        small = wc_write_throughput(icx(), "wc_mmio", 64)
        large = wc_write_throughput(icx(), "wc_mmio", 4096)
        assert large > 4 * small

    def test_fig2_wb_beats_wc(self):
        for barrier in (64, 1024, 8192):
            assert wc_write_throughput(icx(), "wb_dram", barrier) > \
                wc_write_throughput(icx(), "wc_mmio", barrier)

    def test_fig2_wb_flat_across_barriers(self):
        small = wc_write_throughput(icx(), "wb_dram", 64)
        large = wc_write_throughput(icx(), "wb_dram", 8192)
        assert large / small < 1.3

    def test_fig3_cliff_at_buffer_count(self):
        points = dict(wc_store_latency(icx(), "e810"))
        assert points[24] < 25.0          # uniform and low before the cliff
        assert points[32] > 15 * points[24]  # 15x+ after exhaustion
        assert points[64] > points[48] > points[32]

    def test_fig3_cx6_cheaper_eviction(self):
        e810 = dict(wc_store_latency(icx(), "e810"))
        cx6 = dict(wc_store_latency(icx(), "cx6"))
        assert cx6[64] < e810[64]

    def test_bad_barrier_rejected(self):
        with pytest.raises(ValueError):
            wc_write_throughput(icx(), "wc_mmio", 60)
        with pytest.raises(ValueError):
            wc_write_throughput(icx(), "nope", 64)


class TestScalingModel:
    def model(self):
        return ScalingModel(
            spec=icx(),
            kind=InterfaceKind.CCNIC,
            pkt_size=64,
            per_queue_sat_mpps=20.0,
            wire_bytes_dir0=150.0,
            wire_bytes_dir1=150.0,
            nic_pps_capacity=None,
            nic_line_gbps=None,
        )

    def test_core_limited_regime(self):
        m = self.model()
        assert m.max_mpps(2) == pytest.approx(40.0)

    def test_link_limited_regime(self):
        m = self.model()
        # Bottleneck: 443Gbps data -> wire rate / 150B per packet.
        cap = m.bottleneck_mpps()
        assert m.max_mpps(16) == pytest.approx(min(16 * 20.0, cap))

    def test_hyperthreads_add_fractional_rate(self):
        m = self.model()
        full = m.max_mpps(16)
        with_ht = m.max_mpps(20)
        if full < m.bottleneck_mpps():
            assert full < with_ht < full + 4 * 20.0

    def test_shared_wait_grows_toward_capacity(self):
        m = self.model()
        low = m.shared_wait_ns(0.3 * m.bottleneck_mpps())
        high = m.shared_wait_ns(0.9 * m.bottleneck_mpps())
        assert high > 3 * low

    def test_nic_capacity_caps(self):
        m = ScalingModel(
            spec=icx(),
            kind=InterfaceKind.E810,
            pkt_size=64,
            per_queue_sat_mpps=10.0,
            wire_bytes_dir0=100.0,
            wire_bytes_dir1=100.0,
            nic_pps_capacity=195e6,
            nic_line_gbps=200.0,
        )
        assert m.bottleneck_mpps() <= 195.0

    def test_build_scaling_model_measures(self):
        model = build_scaling_model(icx(), InterfaceKind.CCNIC, 64,
                                    n_packets=3000, inflight=128)
        assert model.per_queue_sat_mpps > 5.0
        assert model.wire_bytes_dir0 > 64


class TestBuildInterface:
    def test_all_kinds_build(self):
        for kind in InterfaceKind:
            setup = build_interface(icx(), kind)
            assert setup.driver is not None
            assert setup.link() is not None

    def test_same_socket_flag(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC, same_socket=True)
        assert setup.system.nic_socket == 0


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bee"], [[1, 2.5], [100, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[123.456]])
        assert "123" in out
