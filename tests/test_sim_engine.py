"""Discrete-event engine behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_single_process_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 10.0
        log.append(sim.now)
        yield 5.0
        log.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    assert log == [0.0, 10.0, 15.0]


def test_two_processes_interleave_by_time():
    sim = Simulator()
    log = []

    def proc(name, delay):
        for _ in range(3):
            log.append((sim.now, name))
            yield delay

    sim.spawn(proc("fast", 1.0), "fast")
    sim.spawn(proc("slow", 2.5), "slow")
    sim.run()
    assert log[0] == (0.0, "fast")
    assert (2.0, "fast") in log
    assert (2.5, "slow") in log


def test_tie_break_is_spawn_order():
    sim = Simulator()
    log = []

    def proc(name):
        log.append(name)
        yield 1.0
        log.append(name)

    sim.spawn(proc("a"), "a")
    sim.spawn(proc("b"), "b")
    sim.run()
    assert log == ["a", "b", "a", "b"]


def test_run_until_bound():
    sim = Simulator()

    def forever():
        while True:
            yield 10.0

    sim.spawn(forever(), "loop")
    end = sim.run(until=55.0)
    assert end == 55.0
    assert sim.pending > 0  # the process is still queued


def test_stop_when_predicate():
    sim = Simulator()
    counter = {"n": 0}

    def proc():
        while True:
            counter["n"] += 1
            yield 1.0

    sim.spawn(proc(), "p")
    sim.run(stop_when=lambda: counter["n"] >= 5)
    assert counter["n"] == 5


def test_max_events():
    sim = Simulator()

    def proc():
        while True:
            yield 1.0

    sim.spawn(proc(), "p")
    sim.run(max_events=7)
    assert sim.events_executed == 7


def test_process_stop():
    sim = Simulator()
    log = []

    def proc():
        while True:
            log.append(sim.now)
            yield 1.0

    handle = sim.spawn(proc(), "p")
    sim.run(max_events=3)
    handle.stop()
    sim.run()
    assert handle.done
    assert len(log) == 3


def test_call_at_and_after():
    sim = Simulator()
    log = []
    sim.call_at(5.0, lambda: log.append(("at", sim.now)))
    sim.call_after(2.0, lambda: log.append(("after", sim.now)))
    sim.run()
    assert log == [("after", 2.0), ("at", 5.0)]


def test_call_in_past_rejected():
    sim = Simulator()

    def proc():
        yield 10.0

    sim.spawn(proc(), "p")
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_is_error():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.spawn(proc(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None, "notgen")  # type: ignore[arg-type]


def test_alive_processes():
    sim = Simulator()

    def short():
        yield 1.0

    def long():
        while True:
            yield 1.0

    sim.spawn(short(), "short")
    sim.spawn(long(), "long")
    sim.run(until=10.0)
    alive = [p.name for p in sim.alive_processes()]
    assert alive == ["long"]
