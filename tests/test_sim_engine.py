"""Discrete-event engine behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_single_process_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 10.0
        log.append(sim.now)
        yield 5.0
        log.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    assert log == [0.0, 10.0, 15.0]


def test_two_processes_interleave_by_time():
    sim = Simulator()
    log = []

    def proc(name, delay):
        for _ in range(3):
            log.append((sim.now, name))
            yield delay

    sim.spawn(proc("fast", 1.0), "fast")
    sim.spawn(proc("slow", 2.5), "slow")
    sim.run()
    assert log[0] == (0.0, "fast")
    assert (2.0, "fast") in log
    assert (2.5, "slow") in log


def test_tie_break_is_spawn_order():
    sim = Simulator()
    log = []

    def proc(name):
        log.append(name)
        yield 1.0
        log.append(name)

    sim.spawn(proc("a"), "a")
    sim.spawn(proc("b"), "b")
    sim.run()
    assert log == ["a", "b", "a", "b"]


def test_run_until_bound():
    sim = Simulator()

    def forever():
        while True:
            yield 10.0

    sim.spawn(forever(), "loop")
    end = sim.run(until=55.0)
    assert end == 55.0
    assert sim.pending > 0  # the process is still queued


def test_stop_when_predicate():
    sim = Simulator()
    counter = {"n": 0}

    def proc():
        while True:
            counter["n"] += 1
            yield 1.0

    sim.spawn(proc(), "p")
    sim.run(stop_when=lambda: counter["n"] >= 5)
    assert counter["n"] == 5


def test_max_events():
    sim = Simulator()

    def proc():
        while True:
            yield 1.0

    sim.spawn(proc(), "p")
    sim.run(max_events=7)
    assert sim.events_executed == 7


def test_process_stop():
    sim = Simulator()
    log = []

    def proc():
        while True:
            log.append(sim.now)
            yield 1.0

    handle = sim.spawn(proc(), "p")
    sim.run(max_events=3)
    handle.stop()
    sim.run()
    assert handle.done
    assert len(log) == 3


def test_call_at_and_after():
    sim = Simulator()
    log = []
    sim.call_at(5.0, lambda: log.append(("at", sim.now)))
    sim.call_after(2.0, lambda: log.append(("after", sim.now)))
    sim.run()
    assert log == [("after", 2.0), ("at", 5.0)]


def test_call_in_past_rejected():
    sim = Simulator()

    def proc():
        yield 10.0

    sim.spawn(proc(), "p")
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_is_error():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.spawn(proc(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None, "notgen")  # type: ignore[arg-type]


def test_alive_processes():
    sim = Simulator()

    def short():
        yield 1.0

    def long():
        while True:
            yield 1.0

    sim.spawn(short(), "short")
    sim.spawn(long(), "long")
    sim.run(until=10.0)
    alive = [p.name for p in sim.alive_processes()]
    assert alive == ["long"]


def test_pids_are_per_simulator():
    def proc():
        yield 1.0

    a = Simulator()
    b = Simulator()
    assert [a.spawn(proc(), "x").pid for _ in range(3)] == [1, 2, 3]
    # A second simulator restarts at 1: pids are reproducible per run,
    # not per interpreter.
    assert b.spawn(proc(), "y").pid == 1


def test_done_processes_are_pruned():
    sim = Simulator()

    def short():
        yield 1.0

    for _ in range(500):
        sim.spawn(short(), "s")
    sim.run()
    # The process table compacts as processes finish instead of
    # retaining every process ever spawned.
    assert len(sim._processes) < 500
    assert list(sim.alive_processes()) == []
    assert sim._processes == []


@pytest.mark.parametrize("slowpath", [False, True])
def test_failed_step_counts_event_and_skips_stop_when(slowpath):
    """The documented contract: a failing event is included in
    events_executed, now holds its timestamp, and stop_when is not
    consulted for it."""
    sim = Simulator(slowpath=slowpath)
    stop_calls = []

    def ok():
        yield 1.0
        yield 1.0

    def bad():
        yield 5.0
        raise RuntimeError("boom")

    sim.spawn(ok(), "ok")
    sim.spawn(bad(), "bad")

    def stop_when():
        stop_calls.append(sim.now)
        return False

    with pytest.raises(RuntimeError):
        sim.run(stop_when=stop_when)
    # Events: ok@0, bad@0, ok@1, ok@2, bad@5 (raises).
    assert sim.events_executed == 5
    assert sim.now == 5.0
    # stop_when saw every completed event but not the failing one.
    assert stop_calls == [0.0, 0.0, 1.0, 2.0]


@pytest.mark.parametrize("slowpath", [False, True])
def test_events_executed_equal_across_paths(slowpath):
    sim = Simulator(slowpath=slowpath)

    def proc():
        for _ in range(10):
            yield 2.0

    sim.spawn(proc(), "p")
    sim.spawn(proc(), "q")
    sim.run()
    assert sim.events_executed == 22  # 2 procs x (10 steps + final return)
    assert sim.now == 20.0


def test_calendar_queue_engaged_past_threshold():
    # Force the fast path so the test holds under REPRO_SIM_SLOWPATH=1.
    sim = Simulator(slowpath=False)
    fired = []
    n = Simulator.CALENDAR_THRESHOLD + 100
    for i in range(n):
        sim.call_at(float(i), lambda i=i: fired.append(i))
    assert sim._cal is not None  # heap migrated to the calendar queue
    assert sim.pending == n
    sim.run()
    assert fired == list(range(n))
    assert sim.events_executed == n


def test_slowpath_never_engages_calendar_queue():
    sim = Simulator(slowpath=True)
    for i in range(Simulator.CALENDAR_THRESHOLD + 100):
        sim.call_at(float(i), lambda: None)
    assert sim._cal is None
    sim.run()
    assert sim._cal is None


def test_direct_process_construction_requires_pid():
    from repro.sim import Process

    def proc():
        yield 1.0

    with pytest.raises(SimulationError, match="without a pid"):
        Process(proc(), "orphan")
    # pids are a per-simulator namespace: there is no class-level
    # fallback counter to leak spawn history between simulators.
    assert not hasattr(Process, "_ids")
    p = Process(proc(), "ok", pid=3)
    assert p.pid == 3


def test_alive_processes_gauge_does_not_mutate_process_table():
    from repro.obs import MetricRegistry, Observability

    obs = Observability(metrics=MetricRegistry())
    sim = Simulator()
    sim.instrument(obs)

    def short():
        yield 1.0

    def forever():
        while True:
            yield 1.0

    for i in range(10):
        sim.spawn(short(), f"s{i}")
    sim.spawn(forever(), "alive")
    sim.run(until=5.0)

    table_before = list(sim._processes)
    done_before = sim._done_count
    snap = obs.metrics.snapshot()
    assert snap[sim.obs_name]["alive_processes"] == 1.0
    # Reading the gauge twice must not compact or reset anything.
    obs.metrics.snapshot()
    assert list(sim._processes) == table_before
    assert sim._done_count == done_before
    # The compacting accessor still works and is the mutating one.
    assert [p.name for p in sim.alive_processes()] == ["alive"]


# ----------------------------------------------------------------------
# Cohort-dispatch chooser hook (repro.check.explore's engine surface)
# ----------------------------------------------------------------------
class _Chooser:
    """Callable object for class-level ``Simulator.chooser`` assignment.

    A plain function assigned to the class attribute would be
    descriptor-bound (``self`` prepended) on instance lookup; a callable
    instance is looked up unchanged.
    """

    def __init__(self, pick=None):
        self.pick = pick  # None means "last index"
        self.calls = []

    def __call__(self, when, records):
        self.calls.append((when, len(records)))
        return len(records) - 1 if self.pick is None else self.pick


@pytest.fixture
def restore_chooser():
    previous = Simulator.chooser
    yield
    Simulator.chooser = previous


def _append_proc(order, name):
    order.append(name)
    return
    yield  # pragma: no cover - makes this a generator function


class TestChooser:
    def test_default_is_none(self):
        assert Simulator.chooser is None

    def test_chooser_called_only_for_ties(self, restore_chooser):
        chooser = _Chooser(pick=0)
        Simulator.chooser = chooser
        sim = Simulator()
        order = []
        sim.spawn(_append_proc(order, "a"), "a", delay=1.0)
        sim.spawn(_append_proc(order, "b"), "b", delay=1.0)
        sim.spawn(_append_proc(order, "c"), "c", delay=2.0)
        sim.run()
        # One choice point: the t=1.0 pair; the lone t=2.0 record is
        # not a cohort.
        assert chooser.calls == [(1.0, 2)]
        assert order == ["a", "b", "c"]

    def test_always_zero_reproduces_canonical_order(self, restore_chooser):
        def run(with_chooser):
            Simulator.chooser = _Chooser(pick=0) if with_chooser else None
            sim = Simulator()
            order = []
            for name in ("a", "b", "c", "d"):
                sim.spawn(_append_proc(order, name), name, delay=1.0)
            sim.run()
            return order

        assert run(True) == run(False)

    def test_last_index_reverses_cohort(self, restore_chooser):
        # Picking the last tied record each round cascades: survivors
        # are requeued with unchanged seq and re-cohorted, so the full
        # cohort dispatches in reverse registration order.
        Simulator.chooser = _Chooser(pick=None)
        sim = Simulator()
        order = []
        for name in ("a", "b", "c"):
            sim.spawn(_append_proc(order, name), name, delay=1.0)
        sim.run()
        assert order == ["c", "b", "a"]

    def test_invalid_index_raises(self, restore_chooser):
        Simulator.chooser = _Chooser(pick=99)
        sim = Simulator()
        order = []
        sim.spawn(_append_proc(order, "a"), "a", delay=1.0)
        sim.spawn(_append_proc(order, "b"), "b", delay=1.0)
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_int_index_raises(self, restore_chooser):
        Simulator.chooser = _Chooser(pick="0")
        sim = Simulator()
        order = []
        sim.spawn(_append_proc(order, "a"), "a", delay=1.0)
        sim.spawn(_append_proc(order, "b"), "b", delay=1.0)
        with pytest.raises(SimulationError):
            sim.run()

    def test_calendar_queue_drained_for_late_chooser(self, restore_chooser):
        # Load enough events to migrate the fast path onto the calendar
        # queue, then attach a chooser: run() must fold the pending set
        # back into the heap so the reference loop sees every record.
        sim = Simulator()
        hits = []
        n = Simulator.CALENDAR_THRESHOLD + 16
        for i in range(n):
            sim.call_at(float(i + 1), lambda i=i: hits.append(i))
        assert sim._cal is not None
        chooser = _Chooser(pick=0)
        Simulator.chooser = chooser
        sim.run()
        assert sim._cal is None
        assert len(hits) == n
        assert hits == sorted(hits)

    def test_footprint_stored_frozen(self):
        sim = Simulator()
        proc = sim.spawn(_append_proc([], "a"), "a", footprint={"ring", "pool"})
        assert proc.footprint == frozenset({"ring", "pool"})
        assert isinstance(proc.footprint, frozenset)
        bare = sim.spawn(_append_proc([], "b"), "b")
        assert bare.footprint is None
