"""Hook triple-attach discipline: flight + sanitizer + timeline.

The fabric's fast path must stay disabled while *any* reference-path
client (flight recorder, sanitizer) remains attached — ``detach_*``
restores it only when all of ``_reference_clients()`` are gone — and
the timeline sampler must never force the reference path at all. On
top of the path discipline, attaching the three hooks in any order
must leave the run fingerprint-identical to a bare run.
"""

import itertools

import pytest

from repro.analysis.checks import attach_sanitizer
from repro.check.explore import _scoped_spec
from repro.check.model import ModelScope, _World
from repro.check.sanitizer import Sanitizer
from repro.obs.flight import FlightRecorder
from repro.obs.timeline import TimelineSampler, attach_timeline
from repro.shard.merge import fingerprint, merge_results
from repro.shard.runner import execute_spec, lookahead_ns
from repro.shard.spec import scenario

OPS = 24
HOOKS = ("flight", "sanitizer", "timeline")


def _fabric():
    return _World(ModelScope(), slowpath=False).fabric


class TestFastpathRestoreDiscipline:
    @pytest.mark.parametrize(
        "attach_order", list(itertools.permutations(("flight", "sanitizer")))
    )
    @pytest.mark.parametrize(
        "detach_order", list(itertools.permutations(("flight", "sanitizer")))
    )
    def test_fastpath_returns_only_after_last_client(
        self, attach_order, detach_order
    ):
        fabric = _fabric()
        assert fabric._fastpath
        for hook in attach_order:
            if hook == "flight":
                fabric.attach_flight(FlightRecorder())
            else:
                fabric.attach_sanitizer(Sanitizer())
            assert not fabric._fastpath
        first, second = detach_order
        for hook, expect_fast in ((first, False), (second, True)):
            if hook == "flight":
                fabric.detach_flight()
            else:
                fabric.detach_sanitizer()
            assert fabric._fastpath is expect_fast

    def test_timeline_never_forces_reference_path(self):
        world = _World(ModelScope(), slowpath=False)
        fabric = world.fabric
        world.sim.timeline = TimelineSampler(interval_ns=1000.0)
        assert fabric._fastpath
        # ... and detaching it does not prematurely restore anything.
        fabric.attach_sanitizer(Sanitizer())
        world.sim.timeline = None
        assert not fabric._fastpath
        fabric.detach_sanitizer()
        assert fabric._fastpath

    def test_slowpath_sim_never_restores_fastpath(self):
        fabric = _World(ModelScope(), slowpath=True).fabric
        assert not fabric._fastpath
        fabric.attach_flight(FlightRecorder())
        fabric.detach_flight()
        assert not fabric._fastpath

    def test_reference_clients_are_flight_and_sanitizer(self):
        fabric = _fabric()
        recorder, sanitizer = FlightRecorder(), Sanitizer()
        fabric.attach_flight(recorder)
        fabric.attach_sanitizer(sanitizer)
        assert fabric._reference_clients() == (recorder, sanitizer)


class TestAttachOrderFingerprints:
    """Any attach order of the triple leaves the fingerprint unchanged."""

    @staticmethod
    def _run(order):
        spec = _scoped_spec(scenario("loopback_64b"), OPS)

        def attach(setup):
            for hook in order:
                if hook == "flight":
                    setup.system.fabric.attach_flight(FlightRecorder())
                elif hook == "sanitizer":
                    attach_sanitizer(setup, Sanitizer())
                else:
                    attach_timeline(
                        TimelineSampler(interval_ns=1000.0), setup
                    )

        result = execute_spec(spec, attach=attach if order else None)
        merged = merge_results(
            [dict(result, index=0)], spec.name, lookahead_ns(spec)
        )
        return fingerprint(merged)

    @pytest.fixture(scope="class")
    def bare_fingerprint(self):
        return self._run(())

    @pytest.mark.parametrize(
        "order", list(itertools.permutations(HOOKS)),
        ids=lambda order: "-".join(order),
    )
    def test_triple_attach_order_is_fingerprint_invariant(
        self, order, bare_fingerprint
    ):
        assert self._run(order) == bare_fingerprint

    @pytest.mark.parametrize("dropped", HOOKS)
    def test_partial_attach_also_invariant(self, dropped, bare_fingerprint):
        order = tuple(h for h in HOOKS if h != dropped)
        assert self._run(order) == bare_fingerprint
