"""Property-based tests on the descriptor rings and the buffer pool."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BufferPool, CcnicConfig
from repro.core.config import DescLayout
from repro.core.ring import CoherentQueue, WorkItem
from repro.platform import System, icx


def build_queue(layout, inline, slots=32):
    system = System(icx())
    queue = CoherentQueue(system, "q", layout=layout, inline_signals=inline,
                          slots=slots, home_socket=0)
    producer = system.new_host_core("p")
    consumer = system.new_nic_core("c")
    return system, queue, producer, consumer


layout_strategy = st.sampled_from([
    (DescLayout.OPT, True),
    (DescLayout.PACK, True),
    (DescLayout.PAD, True),
    (DescLayout.PACK, False),
    (DescLayout.PAD, False),
])

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("produce"), st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("poll"), st.integers(min_value=1, max_value=12)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(layout=layout_strategy, ops=ops_strategy)
def test_fifo_order_and_conservation(layout, ops):
    """Whatever the layout and op sequence: items come out exactly once,
    in FIFO order, and produced >= consumed always."""
    desc_layout, inline = layout
    system, queue, producer, consumer = build_queue(desc_layout, inline)
    next_seq = 0
    received = []
    for op, count in ops:
        if op == "produce":
            items = [WorkItem(buf=None, length=64, pkt=next_seq + i)
                     for i in range(count)]
            accepted, ns = queue.produce(producer, items)
            assert 0 <= accepted <= count
            assert ns >= 0
            next_seq += accepted
            system.sim.now += ns + 1.0
        else:
            got, ns = queue.poll(consumer, count)
            assert ns >= 0
            received.extend(item.pkt for item in got)
            system.sim.now += ns + 1.0
        assert queue.consumed <= queue.produced
    # Drain what remains.
    for _ in range(64):
        got, ns = queue.poll(consumer, 16)
        system.sim.now += ns + 1.0
        if not got:
            break
        received.extend(item.pkt for item in got)
    assert received == list(range(len(received)))
    assert len(received) == queue.consumed == queue.produced


pool_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=6),
                  st.sampled_from([64, 128, 1500, 4096])),
        st.tuples(st.just("free"), st.integers(min_value=1, max_value=6),
                  st.just(0)),
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=50, deadline=None)
@given(ops=pool_ops, recycling=st.booleans(), small=st.booleans())
def test_pool_conservation(ops, recycling, small):
    """Allocations and frees conserve buffers; no address is handed out
    twice concurrently."""
    system = System(icx())
    config = CcnicConfig(pool_buffers=32, buf_recycling=recycling,
                         small_buffers=small)
    pool = BufferPool(system, config)
    host = system.new_host_core("h")
    held = []
    live_addrs = set()
    for op in ops:
        if op[0] == "alloc":
            _verb, count, size = op
            bufs, ns = pool.alloc(host, [size] * count)
            assert ns >= 0
            for buf in bufs:
                span = (buf.addr, buf.addr + buf.capacity)
                for other in held:
                    o_span = (other.addr, other.addr + other.capacity)
                    assert span[1] <= o_span[0] or span[0] >= o_span[1], \
                        "overlapping live buffers"
                held.append(buf)
                live_addrs.add(buf.addr)
        else:
            _verb, count, _ = op
            to_free = held[:count]
            del held[:count]
            if to_free:
                pool.free(host, to_free)
                for buf in to_free:
                    live_addrs.discard(buf.addr)
    # Everything handed out is within the pool region.
    for buf in held:
        assert pool.region.contains(buf.addr, buf.capacity)
