"""Protocol sanitizer: seeded violations, clean runs, fingerprints."""

import pytest

from repro.analysis.checks import (
    attach_sanitizer,
    detach_sanitizer,
    format_rule_summary,
    format_violation_table,
)
from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.analysis.perf import _fingerprint
from repro.shard.runner import _system_snapshot
from repro.check import METADATA_CLASSES, Sanitizer
from repro.core.buffers import Buffer
from repro.core.config import CcnicConfig
from repro.errors import SanitizerError
from repro.obs.export import (
    SANITIZE_SCHEMA,
    export_sanitize_json,
    load_sanitize_json,
)
from repro.platform import icx


class FakeAgent:
    def __init__(self, name):
        self.name = name


class FakeRegion:
    def __init__(self, name, home):
        self.name = name
        self.home = home


class FakeReg:
    base = 0x9000


class FakeQueue:
    """Just enough ring surface for driving the hooks directly."""

    def __init__(self, name="txq0", inline_signals=True, grouped=True):
        self.name = name
        self.inline_signals = inline_signals
        self.grouped = grouped
        self.tail = 0
        self.tail_reg = None if inline_signals else FakeReg()

    def line_addr(self, index):
        if self.grouped:
            return 0x8000 + (index // 4) * 64
        return 0x8000 + index * 64


class FakeItem:
    def __init__(self, buf=None, pkt=None):
        self.buf = buf
        self.pkt = pkt


HOST = FakeAgent("host-q0")
NIC = FakeAgent("nic-q0")


def _publish_and_observe(san, queue, base=0, visible=0.0, n=4):
    group = [FakeItem() for _ in range(n)]
    san.group_publish(queue, HOST, base, group, visible)
    san.signal_observe(queue, NIC, base, visible)
    return group


class TestDoubleReap:
    def test_second_consume_flags(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue)
        for i in range(4):
            san.slot_consume(queue, NIC, i, FakeItem(), 10.0, True)
        assert san.total == 0
        san.slot_consume(queue, NIC, 0, FakeItem(), 12.5, True)
        assert san.counts["double-reap"] == 1
        v = san.violations[0]
        assert v.rule == "double-reap"
        assert v.addr == queue.line_addr(0) == 0x8000
        assert v.sim_time == 12.5
        assert v.agents == ("nic-q0",)


class TestReadBeforeSignal:
    def test_never_published(self):
        san = Sanitizer()
        queue = FakeQueue()
        san.slot_consume(queue, NIC, 5, FakeItem(), 3.0, True)
        assert san.counts["read-before-signal"] == 1
        assert "never published" in san.violations[0].message
        assert san.violations[0].addr == queue.line_addr(5)

    def test_consume_before_store_retires(self):
        san = Sanitizer()
        queue = FakeQueue(grouped=False)
        san.slot_publish(queue, HOST, 0, FakeItem(), visible=100.0)
        san.signal_observe(queue, NIC, 0, 50.0)
        san.slot_consume(queue, NIC, 0, FakeItem(), 50.0, True)
        assert san.counts["read-before-signal"] == 1
        v = san.violations[0]
        assert "retires at t=100.0ns" in v.message
        assert v.sim_time == 50.0

    def test_signal_skipping_reader(self):
        # Consumer never observed the inlined signal: no happens-before
        # edge from publish to consume.
        san = Sanitizer()
        queue = FakeQueue()
        san.group_publish(queue, HOST, 0, [FakeItem()] * 4, 0.0)
        san.slot_consume(queue, NIC, 0, FakeItem(), 5.0, True)
        assert san.counts["read-before-signal"] == 1
        assert "not happens-before ordered" in san.violations[0].message

    def test_observed_signal_is_clean(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue, visible=2.0)
        for i in range(4):
            san.slot_consume(queue, NIC, i, FakeItem(), 5.0, True)
        assert san.total == 0

    def test_register_tail_observed_before_retirement(self):
        san = Sanitizer()
        queue = FakeQueue(inline_signals=False, grouped=False)
        san.slot_publish(queue, HOST, 0, FakeItem(), visible=0.0)
        san.signal_publish(queue, HOST, 1, visible=100.0)
        san.signal_observe(queue, NIC, "tail", 40.0)
        assert san.counts["read-before-signal"] == 1
        v = san.violations[0]
        assert v.addr == FakeReg.base
        assert "before the producer's store retired" in v.message

    def test_register_consume_beyond_observed_tail(self):
        san = Sanitizer()
        queue = FakeQueue(inline_signals=False, grouped=False)
        san.slot_publish(queue, HOST, 0, FakeItem(), visible=0.0)
        # Tail store published but this consumer never read the register.
        san.signal_publish(queue, HOST, 1, visible=0.0)
        san.slot_consume(queue, NIC, 0, FakeItem(), 5.0, True)
        assert san.counts["read-before-signal"] == 1
        assert "beyond the observed tail" in san.violations[0].message

    def test_register_mode_clean(self):
        san = Sanitizer()
        queue = FakeQueue(inline_signals=False, grouped=False)
        san.slot_publish(queue, HOST, 0, FakeItem(), visible=0.0)
        san.signal_publish(queue, HOST, 1, visible=0.0)
        san.signal_observe(queue, NIC, "tail", 5.0)
        san.slot_consume(queue, NIC, 0, FakeItem(), 5.0, True)
        assert san.total == 0


class TestTornGroupRead:
    def test_non_aligned_signal_gate(self):
        san = Sanitizer()
        queue = FakeQueue()
        san.signal_observe(queue, NIC, 2, 7.0)
        assert san.counts["torn-group-read"] == 1
        v = san.violations[0]
        assert "non-group-aligned position 2" in v.message
        assert v.sim_time == 7.0

    def test_partial_group_consume(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue, base=0)
        _publish_and_observe(san, queue, base=4)
        san.slot_consume(queue, NIC, 0, FakeItem(), 9.0, True)
        san.slot_consume(queue, NIC, 1, FakeItem(), 9.0, True)
        # Jumping to the next line with half the group unconsumed.
        san.slot_consume(queue, NIC, 4, FakeItem(), 9.0, True)
        assert san.counts["torn-group-read"] == 1
        v = [x for x in san.violations if x.rule == "torn-group-read"][0]
        assert "2/4 slots" in v.message
        assert v.addr == queue.line_addr(0)


class TestBlankSkip:
    def test_emitted_blank_flags(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue, n=2)  # slots 2,3 are blanks
        san.slot_consume(queue, NIC, 0, FakeItem(), 4.0, True)
        san.slot_consume(queue, NIC, 1, FakeItem(), 4.0, True)
        san.slot_consume(queue, NIC, 2, None, 4.0, True, blank=True)
        assert san.counts["blank-skip"] == 1
        assert "emitted as a work item" in san.violations[0].message

    def test_skipped_blank_is_clean(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue, n=2)
        san.slot_consume(queue, NIC, 0, FakeItem(), 4.0, True)
        san.slot_consume(queue, NIC, 1, FakeItem(), 4.0, True)
        san.slot_consume(queue, NIC, 2, None, 4.0, False, blank=True)
        san.slot_consume(queue, NIC, 3, None, 4.0, False, blank=True)
        assert san.total == 0


class TestQueueReset:
    def test_reset_clears_stale_state(self):
        san = Sanitizer()
        queue = FakeQueue()
        _publish_and_observe(san, queue)
        queue.tail = 4
        san.queue_reset(queue)
        # Fresh traffic after a watchdog reset is clean.
        _publish_and_observe(san, queue, base=4)
        for i in range(4, 8):
            san.slot_consume(queue, NIC, i, FakeItem(), 20.0, True)
        assert san.total == 0


class TestBufferOwnership:
    def _buf(self, addr=0x20000):
        buf = Buffer(addr=addr, capacity=2048)
        buf._allocated = True
        return buf

    def test_use_after_free(self):
        san = Sanitizer()
        buf = self._buf()
        san.pool_alloc(None, HOST, [buf])
        # Mirror the pool: hook fires before the allocated flag flips.
        san.pool_free(None, NIC, buf)
        buf._allocated = False
        assert san.total == 0
        san.buf_access(HOST, buf, write=True)
        assert san.counts["use-after-free"] == 1
        v = san.violations[0]
        assert v.addr == buf.addr
        assert "freed by nic-q0" in v.message

    def test_double_free(self):
        san = Sanitizer()
        buf = self._buf()
        san.pool_alloc(None, HOST, [buf])
        san.pool_free(None, HOST, buf)
        buf._allocated = False
        san.pool_free(None, HOST, buf)
        assert san.counts["double-free"] == 1
        assert f"buffer {buf.buf_id}" in san.violations[0].message

    def test_access_while_inflight(self):
        san = Sanitizer()
        queue = FakeQueue(grouped=False)
        buf = self._buf()
        san.pool_alloc(None, HOST, [buf])
        san.slot_publish(queue, HOST, 0, FakeItem(buf=buf), visible=0.0)
        san.buf_access(HOST, buf, write=True)
        assert san.counts["use-after-free"] == 1
        assert "in flight on txq0" in san.violations[0].message
        # Consumption transfers ownership; access is clean again.
        san.signal_observe(queue, NIC, 0, 1.0)
        san.slot_consume(queue, NIC, 0, FakeItem(buf=buf), 1.0, True)
        san.buf_access(NIC, buf, write=False)
        assert san.total == 1

    def test_owned_access_is_clean(self):
        san = Sanitizer()
        buf = self._buf()
        san.pool_alloc(None, HOST, [buf])
        san.buf_access(HOST, buf, write=True)
        san.buf_access(HOST, buf, write=False)
        assert san.total == 0


class TestWriterHoming:
    def test_metadata_read_flags(self):
        san = Sanitizer()
        region = FakeRegion("txq0_ring", home=1)
        san.spec_read(8.0, 100, region, NIC, write=False)
        assert san.counts["writer-homing"] == 1
        v = san.violations[0]
        assert v.addr == 100 * 64
        assert v.sim_time == 8.0
        assert "txq0_ring" in v.message

    def test_writer_access_exempt(self):
        san = Sanitizer()
        san.spec_read(8.0, 100, FakeRegion("txq0_ring", 0), HOST, write=True)
        assert san.total == 0

    def test_payload_and_pool_meta_exempt(self):
        assert "pool_meta" not in METADATA_CLASSES
        san = Sanitizer()
        san.spec_read(8.0, 5, FakeRegion("pool", 0), HOST, write=False)
        san.spec_read(8.0, 6, FakeRegion("pool_meta", 0), HOST, write=False)
        assert san.total == 0

    def test_one_retained_finding_per_line(self):
        san = Sanitizer()
        region = FakeRegion("rxq0_ring", home=0)
        san.spec_read(1.0, 7, region, HOST, write=False)
        san.spec_read(2.0, 7, region, HOST, write=False)
        assert san.counts["writer-homing"] == 2
        assert len(san.violations) == 1


class TestStrictMode:
    def test_first_violation_raises_with_structure(self):
        san = Sanitizer(strict=True)
        queue = FakeQueue()
        with pytest.raises(SanitizerError) as info:
            san.slot_consume(queue, NIC, 5, FakeItem(), 3.25, True)
        exc = info.value
        assert exc.rule == "read-before-signal"
        assert exc.addr == queue.line_addr(5)
        assert exc.agents == ("nic-q0",)
        assert exc.sim_time == 3.25


class TestReport:
    def test_schema_and_roundtrip(self, tmp_path):
        san = Sanitizer()
        queue = FakeQueue()
        san.slot_consume(queue, NIC, 5, FakeItem(), 3.0, True)
        report = san.report(config={"command": "test"})
        assert report["schema"] == SANITIZE_SCHEMA
        assert report["total"] == 1
        assert report["counts"] == {"read-before-signal": 1}
        assert not report["truncated"]
        path = str(tmp_path / "san.json")
        export_sanitize_json(report, path)
        assert load_sanitize_json(path) == report

    def test_tables_render(self):
        san = Sanitizer()
        queue = FakeQueue()
        san.slot_consume(queue, NIC, 5, FakeItem(), 3.0, True)
        report = san.report()
        assert "read-before-signal" in format_rule_summary(report)
        assert "0x8040" in format_violation_table(report)
        assert "No sanitizer findings." in format_violation_table(
            Sanitizer().report()
        )

    def test_max_findings_caps_retention_not_counts(self):
        san = Sanitizer(max_findings=2)
        queue = FakeQueue(grouped=False)
        for i in range(5):
            san.slot_consume(queue, NIC, 10 + 2 * i, FakeItem(), 1.0, True)
        assert san.counts["read-before-signal"] == 5
        assert len(san.violations) == 2
        assert san.report()["truncated"]


# ----------------------------------------------------------------------
# System-level scenarios
# ----------------------------------------------------------------------
def _sanitized_loopback(config=None, n_packets=300, sanitizer=None):
    setup = build_interface(icx(), InterfaceKind.CCNIC, config=config)
    if sanitizer is not None:
        attach_sanitizer(setup, sanitizer)
    result = run_point(setup, 64, n_packets, inflight=32)
    assert result.received == n_packets
    return setup


class TestCleanRuns:
    def test_default_loopback_zero_findings(self):
        san = Sanitizer()
        _sanitized_loopback(sanitizer=san)
        assert san.total == 0
        assert san.events > 0

    def test_register_signaling_zero_findings(self):
        config = CcnicConfig(
            ring_slots=1024, recycle_stack_max=1024, inline_signals=False
        )
        san = Sanitizer()
        _sanitized_loopback(config=config, sanitizer=san)
        assert san.total == 0

    def test_strict_clean_run_does_not_raise(self):
        _sanitized_loopback(sanitizer=Sanitizer(strict=True))


class TestSeededWriterHomingViolation:
    def test_reader_homed_rings_detected(self):
        config = CcnicConfig(
            ring_slots=1024, recycle_stack_max=1024, writer_homed_rings=False
        )
        san = Sanitizer()
        _sanitized_loopback(config=config, sanitizer=san)
        assert san.counts.get("writer-homing", 0) > 0
        regions = {v.location for v in san.violations}
        assert any("ring" in r for r in regions)


class TestFingerprintInvariance:
    """Sanitized runs must be bit-identical to unsanitized ones."""

    def _fingerprint(self, sanitizer=None):
        setup = _sanitized_loopback(sanitizer=sanitizer)
        if sanitizer is not None:
            detach_sanitizer(setup)
        return _fingerprint(_system_snapshot(setup.system))

    def test_attached_vs_detached_fastpath(self):
        assert self._fingerprint() == self._fingerprint(Sanitizer())

    def test_attached_matches_slowpath(self, monkeypatch):
        baseline = self._fingerprint()
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
        assert self._fingerprint(Sanitizer()) == baseline
