"""Platform presets, Table 1 data, and the system builder."""

import pytest

from repro.errors import ConfigError
from repro.mem import MemType
from repro.platform import (
    CX6,
    E810,
    LINK_GENERATIONS,
    System,
    icx,
    spr,
    table1_rows,
)


class TestPresets:
    def test_icx_matches_paper_calibration(self):
        spec = icx()
        assert spec.cores_per_socket == 16
        assert spec.freq_ghz == 3.1
        assert spec.cost.local_dram == 72.0
        assert spec.cost.remote_dram == 144.0
        assert spec.cost.remote_cache_writer_homed == 114.0
        assert spec.cost.remote_cache_reader_homed == 119.0
        assert spec.upi_data_gbps == 443.0

    def test_spr_matches_paper_calibration(self):
        spec = spr()
        assert spec.cores_per_socket == 56
        assert spec.cost.local_dram == 108.0
        assert spec.cost.remote_dram == 191.0
        assert spec.cost.remote_cache_writer_homed == 171.0
        assert spec.upi_data_gbps == 1020.0

    def test_l2_lines(self):
        assert icx().l2_lines == 1_310_720 // 64
        assert spr().l2_lines == 2 * 1024 * 1024 // 64

    def test_wire_rate_exceeds_data_rate(self):
        spec = icx()
        assert spec.upi_wire_bytes_per_ns > spec.upi_data_gbps / 8.0

    def test_nic_lookup(self):
        spec = icx()
        assert spec.nic("e810") is E810
        assert spec.nic("CX6") is CX6
        with pytest.raises(ConfigError):
            spec.nic("cx7")

    def test_cycles_to_ns_uses_ipc(self):
        spec = spr()
        assert spec.cycles_to_ns(spec.freq_ghz * spec.ipc) == pytest.approx(1.0)

    def test_with_cost_replaces(self):
        spec = icx()
        scaled = spec.with_cost(spec.cost.scaled_remote(2.0))
        assert scaled.cost.remote_dram == 288.0
        assert scaled.cost.local_dram == 72.0
        assert spec.cost.remote_dram == 144.0  # original untouched


class TestTable1:
    def test_row_count(self):
        assert len(LINK_GENERATIONS) == 5
        assert len(table1_rows()) == 5

    def test_paper_values(self):
        rows = {r[0]: r for r in table1_rows()}
        assert rows["PCIe 4.0"][3] == 31.5
        assert rows["Ice Lake UPI"][3] == 67.2
        assert rows["Sapphire Rapids UPI"][3] == 192.0

    def test_upi_beats_contemporary_pcie(self):
        rows = {r[0]: r for r in table1_rows()}
        assert rows["Ice Lake UPI"][3] > rows["PCIe 4.0"][3]
        assert rows["Sapphire Rapids UPI"][3] > rows["PCIe 5.0, CXL 1.0-2.0"][3]


class TestNicSpecs:
    def test_e810_calibration(self):
        assert E810.mmio_read_rtt_ns == 982.0
        assert not E810.inline_descriptors

    def test_cx6_has_inline_path(self):
        assert CX6.inline_descriptors
        assert CX6.pps_capacity < E810.pps_capacity


class TestSystem:
    def test_sockets(self):
        system = System(icx())
        assert system.nic_socket == 1
        host = system.new_host_core("h")
        nic = system.new_nic_core("n")
        assert host.socket == 0
        assert nic.socket == 1

    def test_same_socket_mode(self):
        system = System(icx(), same_socket=True)
        assert system.nic_socket == 0
        nic = system.new_nic_core("n")
        assert nic.socket == 0

    def test_alloc_homing(self):
        system = System(icx())
        h = system.alloc_host("h", 64)
        n = system.alloc_nic("n", 64)
        assert h.home == 0
        assert n.home == 1
        assert h.memtype is MemType.WRITEBACK

    def test_same_socket_alloc_nic_is_host_homed(self):
        system = System(icx(), same_socket=True)
        assert system.alloc_nic("n", 64).home == 0

    def test_link_scaling_factors(self):
        base = System(icx())
        slow = System(icx(), link_latency_factor=1.5, link_bandwidth_factor=0.5)
        assert slow.link.latency_ns == pytest.approx(base.link.latency_ns * 1.5)
        assert slow.link.bandwidth == pytest.approx(base.link.bandwidth * 0.5)
        assert slow.cost.remote_dram == pytest.approx(base.cost.remote_dram * 1.5)

    def test_prefetch_flags(self):
        system = System(icx(), prefetch_host=False, prefetch_nic=True)
        assert not system.new_host_core("h").prefetch
        assert system.new_nic_core("n").prefetch
        # Explicit override wins.
        assert system.new_host_core("h2", prefetch=True).prefetch


class TestCxlProjection:
    def test_cxl_preset_values(self):
        from repro.platform import cxl, spr
        c = cxl()
        s = spr()
        # Device-path latencies stretched into the CXL-expected range.
        assert c.cost.remote_dram == pytest.approx(s.cost.remote_dram * 1.3)
        assert 170 <= c.cost.remote_cache_writer_homed <= 250
        # Host-local behaviour unchanged.
        assert c.cost.local_dram == s.cost.local_dram
        assert c.cost.l2_hit == s.cost.l2_hit
        # CXL 2.0 x16 data rate from Table 1.
        assert c.upi_data_gbps == 504.0

    def test_cxl_system_builds_and_runs(self):
        from repro.platform import cxl
        system = System(cxl())
        host = system.new_host_core("h")
        region = system.alloc_nic("dev", 64)
        latency = system.fabric.read(host, region.base, 64)
        assert latency == pytest.approx(cxl().cost.remote_dram)
