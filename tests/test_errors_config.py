"""Exception hierarchy and configuration validation."""

import pytest

from repro import errors
from repro.core import CcnicConfig, DescLayout
from repro.errors import ConfigError


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in ("SimulationError", "MemoryError_", "CoherenceError",
                     "InterconnectError", "NicError", "PoolError",
                     "ConfigError", "WorkloadError", "CheckError",
                     "SanitizerError", "LintError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_pool_error_is_nic_error(self):
        assert issubclass(errors.PoolError, errors.NicError)

    def test_check_errors_are_check_errors(self):
        assert issubclass(errors.SanitizerError, errors.CheckError)
        assert issubclass(errors.LintError, errors.CheckError)

    def test_config_error_still_a_value_error(self):
        # Pre-taxonomy call sites (and their tests) catch ValueError.
        assert issubclass(errors.ConfigError, ValueError)

    def test_catchable_at_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.PoolError("boom")

    def test_sanitizer_error_structured_attrs(self):
        exc = errors.SanitizerError(
            "double reap", rule="double-reap", addr=0x1000,
            agents=("nic-q0", "host-q0"), sim_time=12.5,
        )
        assert exc.rule == "double-reap"
        assert exc.addr == 0x1000
        assert exc.agents == ("nic-q0", "host-q0")
        assert exc.sim_time == 12.5

    def test_sanitizer_error_defaults(self):
        exc = errors.SanitizerError("bare")
        assert exc.rule is None
        assert exc.addr is None
        assert exc.agents == ()
        assert exc.sim_time is None


class TestCcnicConfig:
    def test_defaults_are_fully_optimized(self):
        config = CcnicConfig()
        assert config.inline_signals
        assert config.desc_layout is DescLayout.OPT
        assert config.buf_recycling
        assert config.small_buffers
        assert config.nic_buffer_mgmt
        assert config.nonseq_alloc
        assert config.writer_homed_rings
        assert config.caching_stores

    @pytest.mark.parametrize("field,value", [
        ("ring_slots", 0),
        ("ring_slots", 6),          # not a multiple of 4
        ("pool_buffers", 0),
        ("buf_size", 60),           # not a multiple of 64
        ("small_buf_size", 100),    # does not divide buf_size
        ("tx_batch", 0),
        ("rx_batch", -1),
        ("wire_delay_ns", -0.1),
        ("small_threshold", 256),   # exceeds small_buf_size
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            CcnicConfig(**{field: value})

    def test_frozen(self):
        config = CcnicConfig()
        with pytest.raises(Exception):
            config.ring_slots = 4  # type: ignore[misc]

    def test_layout_descs_per_line(self):
        assert DescLayout.OPT.descs_per_line == 4
        assert DescLayout.PACK.descs_per_line == 4
        assert DescLayout.PAD.descs_per_line == 1


class TestCostModelValidation:
    def test_ordering_constraints(self):
        from repro.coherence import CostModel
        with pytest.raises(ConfigError):
            CostModel(l2_hit=100.0, local_cache=48.0, local_dram=72.0,
                      remote_dram=144.0, remote_cache_writer_homed=114.0,
                      remote_cache_reader_homed=119.0, local_invalidate=30.0,
                      remote_invalidate=100.0)  # l2_hit > local_dram
        with pytest.raises(ConfigError):
            CostModel(l2_hit=5.0, local_cache=48.0, local_dram=200.0,
                      remote_dram=144.0, remote_cache_writer_homed=114.0,
                      remote_cache_reader_homed=119.0, local_invalidate=30.0,
                      remote_invalidate=100.0)  # local > remote DRAM

    def test_scaled_remote(self):
        from repro.coherence import CostModel
        base = CostModel(l2_hit=5.0, local_cache=48.0, local_dram=72.0,
                         remote_dram=144.0, remote_cache_writer_homed=114.0,
                         remote_cache_reader_homed=119.0, local_invalidate=30.0,
                         remote_invalidate=100.0)
        scaled = base.scaled_remote(1.5)
        assert scaled.remote_dram == 216.0
        assert scaled.local_dram == 72.0
        with pytest.raises(ConfigError):
            base.scaled_remote(0.0)

    def test_nt_efficiency_bounds(self):
        from repro.coherence import CostModel
        with pytest.raises(ConfigError):
            CostModel(l2_hit=5.0, local_cache=48.0, local_dram=72.0,
                      remote_dram=144.0, remote_cache_writer_homed=114.0,
                      remote_cache_reader_homed=119.0, local_invalidate=30.0,
                      remote_invalidate=100.0, nt_link_efficiency=1.5)


class TestNicSpecValidation:
    def test_bad_values_rejected(self):
        from repro.platform.nicspecs import NicHardwareSpec
        with pytest.raises(ConfigError):
            NicHardwareSpec(name="x", pcie_one_way_ns=0, mmio_read_rtt_ns=1,
                            dma_rtt_ns=1, pipeline_ns=1, pps_capacity=1,
                            line_rate_gbps=1)
        with pytest.raises(ConfigError):
            NicHardwareSpec(name="x", pcie_one_way_ns=1, mmio_read_rtt_ns=1,
                            dma_rtt_ns=1, pipeline_ns=1, pps_capacity=0,
                            line_rate_gbps=1)
