"""Windowed timeline telemetry: sampler, merge, watchdogs, exports.

The load-bearing contracts live in ``TestFingerprintInvariance`` (an
attached sampler must not perturb a run's merged fingerprint) and
``TestMergedTimelineDeterminism`` (merged timelines are bit-identical
for any worker count) — the same guarantees the metric merge already
makes, extended to the windowed series.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.export import (
    TIMELINE_SCHEMA,
    export_timeline_json,
    load_timeline_json,
)
from repro.obs.timeline import (
    DEFAULT_WATCHDOGS,
    LatencyRegressionRule,
    LinkSaturationRule,
    StalledProgressRule,
    TimelineSampler,
    attach_timeline,
    detach_timeline,
    run_watchdogs,
    timeline_counter_tracks,
)
from repro.shard import run_sharded
from repro.shard.merge import merge_timelines
from repro.sim.stats import Histogram

import repro.topology  # noqa: F401  registers the rack scenarios


# ----------------------------------------------------------------------
# Sampler unit behavior
# ----------------------------------------------------------------------
class TestSampler:
    def test_counter_windows_hold_deltas(self):
        reading = {"v": 0.0}
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.counter("c", lambda: reading["v"])
        reading["v"] = 3.0
        sampler.roll(100.0)  # closes window 0
        reading["v"] = 10.0
        sampler.roll(250.0)  # closes windows 1 (delta 7) and nothing else
        doc = sampler.to_doc()
        assert doc["counters"]["c"] == [3.0, 7.0]

    def test_counter_scale(self):
        reading = {"v": 0.0}
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.counter("busy", lambda: reading["v"], scale=1 / 100.0)
        reading["v"] = 50.0
        sampler.roll(100.0)
        assert sampler.to_doc()["counters"]["busy"] == [0.5]

    def test_gauge_reads_at_close(self):
        reading = {"v": 1.0}
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.gauge("g", lambda: reading["v"])
        sampler.roll(100.0)
        reading["v"] = 9.0
        sampler.roll(200.0)
        assert sampler.to_doc()["gauges"]["g"] == [1.0, 9.0]

    def test_roll_closes_every_crossed_window(self):
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.gauge("g", lambda: 0.0)
        sampler.roll(499.0)  # crosses boundaries 100..400
        assert sampler.windows == 4
        assert sampler.next_ns == 500.0

    def test_hist_open_list_identity_stable(self):
        sampler = TimelineSampler(interval_ns=100.0)
        window = sampler.hist("lat")
        append = window.append
        append(5.0)
        sampler.roll(100.0)
        append(7.0)  # cached append still feeds the (cleared) open list
        sampler.finish(150.0)
        doc = sampler.to_doc()
        points = doc["histograms"]["lat"]
        assert points[0]["count"] == 1 and points[0]["p50"] == 5.0
        assert points[1]["count"] == 1 and points[1]["p50"] == 7.0
        assert sampler.hist("lat") is window

    def test_empty_hist_window_is_none(self):
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.hist("lat").append(4.0)
        sampler.roll(300.0)
        doc = sampler.to_doc()
        assert doc["histograms"]["lat"][0]["count"] == 1
        assert doc["histograms"]["lat"][1] is None

    def test_finish_closes_trailing_window_and_is_idempotent(self):
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.hist("lat").append(1.0)
        sampler.finish(100.0)  # sample sits exactly at the boundary
        assert sampler.windows == 2  # rolled window 0, closed trailing 1
        sampler.finish(100.0)
        assert sampler.windows == 2

    def test_duplicate_series_rejected(self):
        sampler = TimelineSampler()
        sampler.counter("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            sampler.gauge("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            sampler.hist("x")
        sampler.hist("h")
        with pytest.raises(ConfigError):
            sampler.counter("h", lambda: 0.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TimelineSampler(interval_ns=0.0)
        with pytest.raises(ConfigError):
            TimelineSampler(capacity=0)

    def test_ring_eviction_advances_start(self):
        sampler = TimelineSampler(interval_ns=10.0, capacity=3)
        reading = {"v": 0.0}
        sampler.counter("c", lambda: reading["v"])
        sampler.hist("lat")
        for w in range(5):
            reading["v"] = float(w + 1)
            sampler.roll((w + 1) * 10.0)
        doc = sampler.to_doc(include_samples=True)
        assert sampler.start == 2
        assert doc["start"] == 2
        assert doc["windows"] == 3
        assert doc["counters"]["c"] == [1.0, 1.0, 1.0]
        assert len(doc["samples"]["lat"]) == 3

    def test_to_doc_is_json_safe_and_stamped(self):
        sampler = TimelineSampler(interval_ns=100.0)
        sampler.gauge("g", lambda: 2.0)
        sampler.hist("lat").append(3.0)
        sampler.finish(90.0)
        doc = sampler.to_doc(include_samples=True)
        assert doc["schema"] == TIMELINE_SCHEMA
        json.dumps(doc)


class TestCounterTracks:
    def test_tracks_shape(self):
        sampler = TimelineSampler(interval_ns=1000.0)
        reading = {"v": 0.0}
        sampler.counter("c", lambda: reading["v"])
        sampler.hist("lat").append(5.0)
        reading["v"] = 4.0
        sampler.roll(1000.0)
        sampler.finish(1500.0)
        tracks = sampler.counter_tracks()
        names = {e["name"] for e in tracks}
        assert names == {"timeline:c", "timeline:lat"}
        for event in tracks:
            assert event["ph"] == "C"
            assert event["pid"] == 0 and event["tid"] == 0
        c0 = [e for e in tracks if e["name"] == "timeline:c"][0]
        assert c0["ts"] == 0.0 and c0["args"] == {"value": 4.0}
        lat = [e for e in tracks if e["name"] == "timeline:lat"]
        assert lat[0]["args"]["p50"] == 5.0
        assert lat[1]["args"] == {"p50": 0.0, "p99": 0.0}  # empty window

    def test_tracks_from_merged_doc(self):
        run = run_sharded("loopback_64b", workers=1, quick=True,
                          timeline_interval=1000.0)
        tracks = timeline_counter_tracks(run.timeline)
        assert tracks
        assert all(e["ph"] == "C" for e in tracks)


# ----------------------------------------------------------------------
# Fingerprint invariance: attached == detached, on every scenario
# ----------------------------------------------------------------------
ALL_SCENARIOS = [
    "loopback_64b", "kv_zipf", "faults_canned", "kv_zipf_1m",
    "kv_rack_zipf", "mesh_2x2_loopback",
]


class TestFingerprintInvariance:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_attached_timeline_does_not_change_fingerprint(self, name):
        bare = run_sharded(name, workers=1, quick=True)
        timed = run_sharded(name, workers=1, quick=True,
                            timeline_interval=1000.0)
        assert bare.fingerprint == timed.fingerprint
        assert bare.doc == timed.doc
        assert timed.timeline is not None
        assert timed.timeline["schema"] == TIMELINE_SCHEMA
        assert bare.timeline is None

    def test_detach_restores_zero_cost_hook(self):
        from repro.analysis.loopback import InterfaceKind, build_interface
        from repro.platform import icx

        setup = build_interface(icx(), InterfaceKind.CCNIC)
        sampler = attach_timeline(TimelineSampler(), setup)
        assert setup.system.sim.timeline is sampler
        detach_timeline(setup)
        assert setup.system.sim.timeline is None
        assert type(setup.system.sim).timeline is None


# ----------------------------------------------------------------------
# Merged-timeline determinism across worker counts
# ----------------------------------------------------------------------
class TestMergedTimelineDeterminism:
    @pytest.mark.parametrize("name", ["loopback_64b", "kv_zipf", "faults_canned"])
    def test_workers_do_not_change_merged_timeline(self, name):
        one = run_sharded(name, workers=1, quick=True, timeline_interval=1000.0)
        two = run_sharded(name, workers=2, quick=True, timeline_interval=1000.0)
        assert one.timeline == two.timeline
        assert one.fingerprint == two.fingerprint

    def test_four_workers_loopback(self):
        base = run_sharded("loopback_64b", workers=1, quick=True,
                           timeline_interval=1000.0)
        wide = run_sharded("loopback_64b", workers=4, quick=True,
                           timeline_interval=1000.0)
        assert base.timeline == wide.timeline

    def test_merged_doc_is_json_safe(self):
        run = run_sharded("kv_zipf", workers=2, quick=True,
                          timeline_interval=1000.0)
        json.dumps(run.timeline)
        assert run.timeline["n_shards"] == run.n_shards
        assert "findings" in run.timeline
        assert "samples" not in run.timeline  # merged docs drop raw samples

    def test_fault_scenario_produces_findings(self):
        run = run_sharded("faults_canned", workers=2, quick=True,
                          timeline_interval=1000.0)
        assert run.timeline["findings"]
        rules = {f["rule"] for f in run.timeline["findings"]}
        assert rules & {"link-saturation", "stalled-progress",
                        "latency-regression"}


# ----------------------------------------------------------------------
# merge_timelines mechanics (S4): empty/single windows, pooled
# percentiles, order independence
# ----------------------------------------------------------------------
def _shard_doc(index, counters=None, hists=None, interval=100.0, start=0):
    names = sorted(hists or {})
    windows = max(
        [len(v) for v in (counters or {}).values()]
        + [len(v) for v in (hists or {}).values()]
        + [0]
    )
    points = {}
    for name in names:
        pts = []
        for window in hists[name]:
            if window:
                h = Histogram(name)
                h.extend(window)
                pts.append({"count": h.count, "p50": h.percentile(50),
                            "p99": h.percentile(99)})
            else:
                pts.append(None)
        points[name] = pts
    return {
        "index": index,
        "timeline": {
            "schema": TIMELINE_SCHEMA,
            "interval_ns": interval,
            "start": start,
            "windows": windows,
            "counters": counters or {},
            "gauges": {},
            "histograms": points,
            "samples": {name: [list(w) for w in hists[name]] for name in names},
        },
    }


class TestMergeTimelines:
    def test_no_timeline_shards_merge_to_none(self):
        assert merge_timelines([{"index": 0}, {"index": 1}]) is None

    def test_counters_sum_with_ragged_lengths(self):
        a = _shard_doc(0, counters={"c": [1.0, 2.0, 3.0]}, hists={})
        b = _shard_doc(1, counters={"c": [10.0]}, hists={})
        merged = merge_timelines([a, b])
        assert merged["counters"]["c"] == [11.0, 2.0, 3.0]
        assert merged["windows"] == 3

    def test_empty_windows_stay_empty(self):
        a = _shard_doc(0, hists={"lat": [[], [], []]})
        b = _shard_doc(1, hists={"lat": [[], [], []]})
        merged = merge_timelines([a, b])
        assert merged["histograms"]["lat"] == [None, None, None]

    def test_single_sample_window(self):
        a = _shard_doc(0, hists={"lat": [[7.0]]})
        b = _shard_doc(1, hists={"lat": [[]]})
        merged = merge_timelines([a, b])
        point = merged["histograms"]["lat"][0]
        assert point == {"count": 1, "p50": 7.0, "p99": 7.0}

    def test_pooling_differs_from_averaging_percentiles(self):
        # Percentiles of pooled samples, not means of per-shard
        # percentiles: an asymmetric split makes the two disagree.
        a = _shard_doc(0, hists={"lat": [[1.0, 1.0, 1.0]]})
        b = _shard_doc(1, hists={"lat": [[100.0]]})
        merged = merge_timelines([a, b])
        pooled = Histogram("ref")
        pooled.extend([1.0, 1.0, 1.0, 100.0])
        assert merged["histograms"]["lat"][0]["p50"] == pooled.percentile(50)

    def test_interval_mismatch_rejected(self):
        a = _shard_doc(0, counters={"c": [1.0]}, hists={})
        b = _shard_doc(1, counters={"c": [1.0]}, hists={}, interval=50.0)
        with pytest.raises(ConfigError):
            merge_timelines([a, b])

    def test_evicted_shard_rejected(self):
        a = _shard_doc(0, counters={"c": [1.0]}, hists={}, start=2)
        with pytest.raises(ConfigError):
            merge_timelines([a])

    @settings(max_examples=25, deadline=None)
    @given(
        windows=st.lists(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    max_size=8,
                ),
                min_size=1, max_size=4,
            ),
            min_size=1, max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_merge_order_independence(self, windows, seed):
        # Pooled per-window percentiles are a function of the sample
        # multiset, so shard input order cannot matter (the merge sorts
        # by shard index internally; this also shuffles which *index*
        # holds which samples).
        import random

        width = max(len(shard) for shard in windows)
        padded = [shard + [[]] * (width - len(shard)) for shard in windows]
        docs = [_shard_doc(i, hists={"lat": shard})
                for i, shard in enumerate(padded)]
        merged = merge_timelines(docs)
        rng = random.Random(seed)
        permuted = padded[:]
        rng.shuffle(permuted)
        redocs = [_shard_doc(i, hists={"lat": shard})
                  for i, shard in enumerate(permuted)]
        remerged = merge_timelines(redocs)
        assert merged["histograms"] == remerged["histograms"]

    def test_numpy_backed_histogram_samples_roundtrip(self):
        # Histogram.samples() feeds the shard doc; pooling via extend()
        # on the numpy twin must reproduce the same order statistics.
        h = Histogram("lat")
        values = [float(v) for v in range(199, -1, -1)]
        h.extend(values)
        assert sorted(h.samples()) == sorted(values)
        pooled = Histogram("pool")
        pooled.extend(h.samples())
        assert pooled.percentile(50) == h.percentile(50)
        assert pooled.percentile(99) == h.percentile(99)


# ----------------------------------------------------------------------
# Watchdogs
# ----------------------------------------------------------------------
def _doc(counters=None, histograms=None, start=0):
    return {
        "schema": TIMELINE_SCHEMA,
        "interval_ns": 100.0,
        "start": start,
        "windows": 0,
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


class TestWatchdogs:
    def test_link_saturation_flags_busy_windows(self):
        doc = _doc(counters={"link.0.busy_frac": [0.2, 0.95, 0.5],
                             "link.0.messages": [100.0, 100.0, 100.0]})
        findings = LinkSaturationRule().check(doc)
        assert len(findings) == 1
        assert findings[0]["window"] == 1
        assert findings[0]["series"] == "link.0.busy_frac"

    def test_latency_regression_vs_run_median(self):
        points = [{"count": 10, "p50": 100.0, "p99": 120.0}] * 5
        points.append({"count": 10, "p50": 100.0, "p99": 900.0})
        doc = _doc(histograms={"latency_ns": points})
        findings = LatencyRegressionRule().check(doc)
        assert len(findings) == 1
        assert findings[0]["window"] == 5
        assert findings[0]["value"] == 900.0

    def test_latency_regression_needs_min_windows(self):
        points = [{"count": 1, "p50": 10.0, "p99": 999.0}]
        doc = _doc(histograms={"latency_ns": points})
        assert LatencyRegressionRule().check(doc) == []

    def test_stalled_progress_interior_run_only(self):
        doc = _doc(counters={"sim.events": [5.0, 0.0, 0.0, 0.0, 5.0]})
        findings = StalledProgressRule().check(doc)
        assert len(findings) == 1
        assert findings[0]["window"] == 1
        assert findings[0]["value"] == 3.0  # run length

    def test_stalled_progress_ignores_short_gaps_and_edges(self):
        # Leading/trailing zeros are warmup/teardown; a single interior
        # zero window is the batch period beating against the grid.
        doc = _doc(counters={"sim.events": [0.0, 5.0, 0.0, 5.0, 0.0]})
        assert StalledProgressRule().check(doc) == []

    def test_stalled_progress_covers_histograms(self):
        points = [{"count": 3, "p50": 1.0, "p99": 1.0}, None, None,
                  {"count": 3, "p50": 1.0, "p99": 1.0}]
        doc = _doc(histograms={"latency_ns": points})
        findings = StalledProgressRule().check(doc)
        assert len(findings) == 1
        assert findings[0]["series"] == "latency_ns"

    def test_run_watchdogs_sorted_and_windows_absolute(self):
        doc = _doc(counters={"link.0.busy_frac": [0.95],
                             "sim.events": [1.0, 0.0, 0.0, 1.0]}, start=7)
        findings = run_watchdogs(doc)
        assert findings == sorted(
            findings, key=lambda f: (f["series"], f["window"], f["rule"]))
        stalled = [f for f in findings if f["rule"] == "stalled-progress"]
        assert stalled[0]["window"] == 8  # 7 (start) + interior window 1
        saturated = [f for f in findings if f["rule"] == "link-saturation"]
        assert saturated[0]["window"] == 7

    def test_default_ruleset_composition(self):
        names = {rule.name for rule in DEFAULT_WATCHDOGS}
        assert names == {"link-saturation", "latency-regression",
                         "stalled-progress"}


# ----------------------------------------------------------------------
# Export / load / stamping (incl. S3 backward compatibility)
# ----------------------------------------------------------------------
class TestExports:
    def test_timeline_roundtrip(self, tmp_path):
        run = run_sharded("loopback_64b", workers=1, quick=True,
                          timeline_interval=1000.0)
        path = str(tmp_path / "tl.json")
        export_timeline_json(run.timeline, path)
        assert load_timeline_json(path) == run.timeline

    def test_foreign_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.json")
        with open(path, "w") as fh:
            json.dump({"schema": "repro.obs/flight-v1"}, fh)
        with pytest.raises(ValueError):
            load_timeline_json(path)
        sampler = TimelineSampler()
        with pytest.raises(ValueError):
            export_timeline_json({"windows": 3}, path)  # missing stamp

    def test_flight_report_stamped_with_scenario(self, tmp_path):
        from repro.obs import FlightRecorder, export_flight_json
        from repro.obs.export import load_flight_json

        report = FlightRecorder().report(
            config={"x": 1}, scenario="loopback_cli_64b",
            spec_fingerprint="abc123",
        )
        assert report["scenario"] == "loopback_cli_64b"
        assert report["spec_fingerprint"] == "abc123"
        path = str(tmp_path / "f.json")
        export_flight_json(report, path)
        assert load_flight_json(path)["scenario"] == "loopback_cli_64b"

    def test_flight_loader_accepts_unstamped_docs(self, tmp_path):
        # Pre-stamp documents (no scenario/spec_fingerprint) keep
        # loading: the fields are additive.
        from repro.obs import FlightRecorder, export_flight_json
        from repro.obs.export import load_flight_json

        report = FlightRecorder().report()
        assert "scenario" not in report
        path = str(tmp_path / "f.json")
        export_flight_json(report, path)
        loaded = load_flight_json(path)
        assert loaded.get("scenario") is None

    def test_sanitizer_report_stamped(self):
        from repro.check import Sanitizer

        report = Sanitizer().report(
            config={"x": 1}, scenario="kv_cli_ads", spec_fingerprint="def456")
        assert report["scenario"] == "kv_cli_ads"
        assert report["spec_fingerprint"] == "def456"
        bare = Sanitizer().report(config={"x": 1})
        assert "scenario" not in bare and "spec_fingerprint" not in bare

    def test_chrome_trace_merges_timeline_tracks(self, tmp_path):
        from repro.obs import SpanTracer, export_chrome_trace

        sampler = TimelineSampler(interval_ns=100.0)
        sampler.gauge("g", lambda: 1.0)
        sampler.finish(50.0)
        tracer = SpanTracer()
        path = str(tmp_path / "trace.json")
        export_chrome_trace(tracer, path, timeline=sampler)
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        assert any(e.get("name") == "timeline:g" for e in events
                   if isinstance(e, dict))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_timeline_command_renders_findings(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "tl.json")
        assert main(["timeline", "--scenario", "faults_canned", "--quick",
                     "--workers", "2", "--out", path]) == 0
        out = capsys.readouterr().out
        assert "watchdog findings" in out
        assert "sim.events" in out
        doc = load_timeline_json(path)
        assert doc["scenario"] == "faults_canned"
        assert doc["findings"]

    def test_timeline_command_load(self, capsys, tmp_path):
        from repro.cli import main

        sampler = TimelineSampler(interval_ns=100.0)
        sampler.gauge("g", lambda: 2.0)
        sampler.finish(250.0)
        path = str(tmp_path / "tl.json")
        export_timeline_json(sampler.to_doc(), path)
        assert main(["timeline", "--load", path]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out and "g" in out

    def test_timeline_command_unknown_scenario(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["timeline", "--scenario", "nope"])

    def test_loopback_timeline_out(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "tl.json")
        assert main(["loopback", "--packets", "300", "--inflight", "8",
                     "--timeline-out", path]) == 0
        doc = load_timeline_json(path)
        assert doc["scenario"] == "loopback_cli_64b"
        assert "sim.events" in doc["counters"]
        assert "wrote timeline" in capsys.readouterr().out

    def test_sharded_loopback_timeline_out(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "tl.json")
        assert main(["loopback", "--packets", "400", "--shards", "2",
                     "--timeline-out", path]) == 0
        doc = load_timeline_json(path)
        assert doc["n_shards"] == 2
        assert "wrote merged timeline" in capsys.readouterr().out

    def test_run_flags_defaults(self):
        from repro.cli import build_parser

        parser = build_parser()
        lb = parser.parse_args(["loopback"])
        assert lb.timeline_out is None and lb.timeline_interval == 1000.0
        fl = parser.parse_args(["faults"])
        assert fl.timeline_interval == 2000.0  # per-command override
        kv = parser.parse_args(["kv"])
        assert kv.timeline_interval == 500.0


# ----------------------------------------------------------------------
# Heartbeat (operator-side; must not touch results)
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_heartbeat_does_not_change_fingerprint(self, capsys):
        quiet = run_sharded("loopback_64b", workers=2, quick=True)
        noisy = run_sharded("loopback_64b", workers=2, quick=True,
                            heartbeat_s=0.001)
        assert quiet.fingerprint == noisy.fingerprint
        assert quiet.doc == noisy.doc
        err = capsys.readouterr().err
        assert "shard(s) done" in err

    def test_heartbeat_prints_progress_to_stderr_only(self, capsys):
        run_sharded("kv_zipf", workers=1, quick=True, heartbeat_s=0.001)
        captured = capsys.readouterr()
        assert "shard(s) done" not in captured.out
