"""Descriptor ring layouts and signaling protocols."""

import pytest

from repro.core.config import DescLayout
from repro.core.ring import CoherentQueue, WorkItem
from repro.errors import NicError
from repro.platform import System, icx


def make_queue(layout=DescLayout.OPT, inline=True, slots=16, home=0):
    system = System(icx())
    queue = CoherentQueue(
        system, "q", layout=layout, inline_signals=inline, slots=slots, home_socket=home
    )
    producer = system.new_host_core("producer")
    consumer = system.new_nic_core("consumer")
    return system, queue, producer, consumer


def items(n, start=0):
    return [WorkItem(buf=None, length=64, pkt=f"p{start + i}") for i in range(n)]


def produce(system, queue, agent, work):
    """Produce and advance virtual time past the stores' retirement.

    In the full simulation the producer process yields the returned cost
    before the consumer runs; direct unit tests advance the clock
    explicitly instead.
    """
    accepted, ns = queue.produce(agent, work)
    system.sim.now += ns + 1.0
    return accepted, ns


class TestGroupedLayout:
    def test_round_trip(self):
        _sys, q, prod, cons = make_queue()
        accepted, _ = produce(_sys, q, prod, items(4))
        assert accepted == 4
        got, _ = q.poll(cons, 8)
        assert [i.pkt for i in got] == ["p0", "p1", "p2", "p3"]

    def test_partial_group_skip_rule(self):
        _sys, q, prod, cons = make_queue()
        accepted, _ = produce(_sys, q, prod, items(2))
        assert accepted == 2
        assert q.tail == 4  # advanced to the next group boundary
        got, _ = q.poll(cons, 8)
        assert len(got) == 2
        assert q.head == 4
        # Next produce lands on a fresh line and is consumable.
        produce(_sys, q, prod, items(3, start=2))
        got, _ = q.poll(cons, 8)
        assert [i.pkt for i in got] == ["p2", "p3", "p4"]

    def test_empty_poll_returns_nothing_but_costs_signal_read(self):
        _sys, q, _prod, cons = make_queue()
        got, ns = q.poll(cons, 4)
        assert got == []
        assert ns > 0

    def test_poll_consumes_whole_lines(self):
        _sys, q, prod, cons = make_queue()
        produce(_sys, q, prod, items(8))
        got, _ = q.poll(cons, 3)
        # Group granularity: the whole first line is consumed.
        assert len(got) == 4

    def test_wraparound(self):
        _sys, q, prod, cons = make_queue(slots=8)
        for lap in range(5):
            accepted, _ = produce(_sys, q, prod, items(8, start=lap * 8))
            assert accepted == 8
            got, _ = q.poll(cons, 8)
            assert len(got) == 8
        assert q.produced == q.consumed == 40

    def test_backpressure_when_full(self):
        _sys, q, prod, _cons = make_queue(slots=8)
        accepted, _ = q.produce(prod, items(12))
        assert accepted == 8
        assert q.space() == 0
        again, _ = q.produce(prod, items(4))
        assert again == 0

    def test_space_frees_after_consume(self):
        _sys, q, prod, cons = make_queue(slots=8)
        produce(_sys, q, prod, items(8))
        q.poll(cons, 4)  # one line
        assert q.space() == 4

    def test_producer_write_is_one_line_op_per_group(self):
        system, q, prod, _cons = make_queue()
        before = system.fabric.counters.snapshot()
        q.produce(prod, items(8))
        diff = system.fabric.counters.diff(before)
        # Host-side writes to host-homed fresh lines: no interconnect
        # transactions at all (local DRAM fills).
        assert diff.get("s0.read", 0) == 0


class TestPackedLayout:
    def test_round_trip(self):
        _sys, q, prod, cons = make_queue(layout=DescLayout.PACK)
        accepted, _ = produce(_sys, q, prod, items(6))
        assert accepted == 6
        got, _ = q.poll(cons, 6)
        assert len(got) == 6

    def test_max_items_respected(self):
        _sys, q, prod, cons = make_queue(layout=DescLayout.PACK)
        produce(_sys, q, prod, items(6))
        got, _ = q.poll(cons, 2)
        assert len(got) == 2
        got, _ = q.poll(cons, 10)
        assert len(got) == 4

    def test_thrash_when_interleaved(self):
        """Producer and consumer alternating on one line both miss."""
        system, q, prod, cons = make_queue(layout=DescLayout.PACK)
        produce(system, q, prod, items(1))
        q.poll(cons, 1)
        before = system.fabric.counters.snapshot()
        produce(system, q, prod, items(1, start=1))  # same line, consumer owns it
        q.poll(cons, 1)
        diff = system.fabric.counters.diff(before)
        assert diff.get("s0.rfo", 0) >= 1  # producer re-acquires the line
        assert diff.get("s1.read", 0) >= 1


class TestPaddedLayout:
    def test_one_descriptor_per_line(self):
        _sys, q, prod, cons = make_queue(layout=DescLayout.PAD, slots=8)
        assert q.region.size == 8 * 64
        produce(_sys, q, prod, items(3))
        got, _ = q.poll(cons, 8)
        assert len(got) == 3

    def test_no_thrash_between_neighbours(self):
        system, q, prod, cons = make_queue(layout=DescLayout.PAD)
        produce(system, q, prod, items(1))
        q.poll(cons, 1)
        before = system.fabric.counters.snapshot()
        q.produce(prod, items(1, start=1))  # different line entirely
        diff = system.fabric.counters.diff(before)
        assert diff.get("s0.rfo", 0) == 0


class TestRegisterSignaling:
    def test_round_trip(self):
        _sys, q, prod, cons = make_queue(layout=DescLayout.PACK, inline=False)
        assert q.tail_reg is not None and q.head_reg is not None
        accepted, _ = produce(_sys, q, prod, items(5))
        assert accepted == 5
        assert q.tail_value == 5
        got, _ = q.poll(cons, 8)
        assert len(got) == 5
        assert q.head_value == 5

    def test_producer_space_uses_cached_head(self):
        _sys, q, prod, cons = make_queue(layout=DescLayout.PACK, inline=False, slots=8)
        produce(_sys, q, prod, items(8))
        q.poll(cons, 8)
        # The producer's cached head copy is stale; a full-looking ring
        # triggers a head-register refresh and then succeeds.
        accepted, _ = q.produce(prod, items(4, start=8))
        assert accepted == 4

    def test_register_costs_charged(self):
        system, q, prod, cons = make_queue(layout=DescLayout.PACK, inline=False)
        produce(system, q, prod, items(1))
        before = system.fabric.counters.snapshot()
        q.poll(cons, 1)
        diff = system.fabric.counters.diff(before)
        # Consumer reads the tail register line + descriptor remotely.
        assert diff.get("s1.read", 0) >= 2


class TestValidation:
    def test_slots_must_be_multiple_of_group(self):
        system = System(icx())
        with pytest.raises(NicError):
            CoherentQueue(system, "bad", DescLayout.OPT, True, slots=6, home_socket=0)

    def test_poll_zero_rejected(self):
        _sys, q, _prod, cons = make_queue()
        with pytest.raises(NicError):
            q.poll(cons, 0)
