"""Calibration self-check regression test."""

from repro.analysis.validate import Check, validate_calibration


class TestCheck:
    def test_within_tolerance(self):
        check = Check(name="x", paper=100.0, measured=103.0, tolerance=0.05)
        assert check.ok
        assert check.error == 0.03

    def test_outside_tolerance(self):
        check = Check(name="x", paper=100.0, measured=120.0, tolerance=0.05)
        assert not check.ok
        assert "DRIFT" in str(check)

    def test_zero_paper_value(self):
        check = Check(name="x", paper=0.0, measured=5.0, tolerance=0.05)
        assert check.error == 0.0


class TestCalibration:
    def test_microbenchmark_anchors_hold(self):
        report = validate_calibration(include_end_to_end=False)
        assert report.ok, "\n" + report.summary()

    def test_end_to_end_anchors_hold(self):
        report = validate_calibration(include_end_to_end=True)
        assert report.ok, "\n" + report.summary()

    def test_report_lists_every_anchor(self):
        report = validate_calibration(include_end_to_end=False)
        names = {check.name for check in report.checks}
        # 5 Fig 7 cases per platform + 2 MMIO + Fig 3.
        assert len(names) == 13
        assert "fig7.icx.R L2 (rh)" in names
        assert report.failures() == []
