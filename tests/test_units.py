"""Unit-conversion and alignment helpers."""

import pytest

from repro import units


def test_gbps_round_trip():
    assert units.bytes_per_ns_to_gbps(units.gbps_to_bytes_per_ns(443.0)) == pytest.approx(443.0)


def test_one_byte_per_ns_is_eight_gbps():
    assert units.bytes_per_ns_to_gbps(1.0) == 8.0


def test_mpps():
    # 1000 packets in 1000 ns = 1 packet/ns = 1000 Mpps.
    assert units.mpps(1000, 1000.0) == pytest.approx(1000.0)
    assert units.mpps(10, 0.0) == 0.0


def test_gbps_counter():
    # 125 bytes in 1 ns = 1000 Gbps.
    assert units.gbps(125, 1.0) == pytest.approx(1000.0)
    assert units.gbps(125, 0.0) == 0.0


def test_align_up():
    assert units.align_up(1, 64) == 64
    assert units.align_up(64, 64) == 64
    assert units.align_up(65, 64) == 128
    assert units.align_up(0, 64) == 0


def test_align_down():
    assert units.align_down(127, 64) == 64
    assert units.align_down(64, 64) == 64


def test_align_rejects_non_positive():
    with pytest.raises(ValueError):
        units.align_up(10, 0)
    with pytest.raises(ValueError):
        units.align_down(10, -1)


def test_is_aligned():
    assert units.is_aligned(128, 64)
    assert not units.is_aligned(100, 64)
    assert not units.is_aligned(100, 0)
