"""Cache-line flight recorder + per-packet critical-path profiler."""

import json

import pytest

from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.analysis.perf import _fingerprint
from repro.shard.runner import _system_snapshot
from repro.analysis.profile import attach_recorder, detach_recorder, run_profile
from repro.obs import (
    STAGES,
    FlightRecorder,
    SpanTracer,
    classify_region,
    export_chrome_trace,
    export_flight_json,
    load_flight_json,
)
from repro.obs.flight import FLIGHT_OFF, REGION_CLASSES
from repro.obs.waterfall import WaterfallStats, build_waterfall
from repro.platform import icx


class FakeRegion:
    def __init__(self, name, home):
        self.name = name
        self.home = home


class TestClassifyRegion:
    def test_known_regions(self):
        assert classify_region("txq0_ring") == "descriptor"
        assert classify_region("rxq1_ring") == "descriptor"
        assert classify_region("e810_txr0") == "descriptor"
        assert classify_region("txq0_tailreg") == "signal"
        assert classify_region("rxq0_headreg") == "signal"
        assert classify_region("e810_txh0") == "signal"
        assert classify_region("pool") == "payload"
        assert classify_region("pool_meta") == "pool_meta"
        assert classify_region("tas_flows") == "other"


class TestWaterfall:
    def test_durations_telescope_to_total(self):
        events = {
            "tx_submit": 100.0,
            "desc_write": 130.0,
            "signal_observed": 150.0,
            "nic_fetch": 180.0,
            "rx_read": 400.0,
        }
        wf = build_waterfall(7, events)
        assert wf.pkt_id == 7
        assert wf.t0_ns == 100.0
        assert wf.total_ns == 300.0
        assert sum(d for _, d in wf.stages) == pytest.approx(wf.total_ns)

    def test_stage_order_is_causal_not_insertion(self):
        events = {"rx_read": 50.0, "tx_submit": 10.0, "wire": 30.0}
        wf = build_waterfall(1, events)
        assert [name for name, _ in wf.stages] == ["wire", "rx_read"]
        assert wf.total_ns == 40.0

    def test_unknown_stages_ignored(self):
        wf = build_waterfall(1, {"tx_submit": 0.0, "bogus": 5.0, "rx_read": 9.0})
        assert wf.total_ns == 9.0
        assert [name for name, _ in wf.stages] == ["rx_read"]

    def test_stats_bound_samples_and_add_p50(self):
        stats = WaterfallStats(max_samples=2)
        for i in range(5):
            stats.add(build_waterfall(i, {"tx_submit": 0.0, "rx_read": 10.0 + i}))
        assert stats.completed == 5
        assert len(stats.samples) == 2
        summary = stats.stage_summary()
        assert "p50" in summary["rx_read"]
        assert summary["total"]["count"] == 5


class TestFlightRecorderUnit:
    def test_ctor_validates(self):
        with pytest.raises(ValueError):
            FlightRecorder(line_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=0)

    def test_line_event_ring_bounded(self):
        rec = FlightRecorder(line_capacity=4)
        region = FakeRegion("pool", 0)
        for i in range(6):
            rec.line_event(float(i), 0x40 + i, region, 1, False, "dram_remote", 50.0)
        assert rec.events_seen == 6
        assert rec.events_dropped == 2
        assert len(rec.events) == 4
        # Oldest evicted: retained ring starts at event 2.
        assert rec.events[0][0] == 2.0
        # Aggregates keep counting past the ring bound.
        assert len(rec.lines) == 6

    def test_pingpong_and_spec_accounting(self):
        rec = FlightRecorder()
        region = FakeRegion("pool", 0)
        rec.line_event(0.0, 0x80, region, 0, True, "cache_remote_hitm", 100.0)
        rec.line_event(1.0, 0x80, region, 1, False, "cache_remote_spec", 120.0)
        rec.line_event(2.0, 0x80, region, 0, True, "cache_remote_hitm", 100.0)
        rec.line_event(3.0, 0x80, region, 0, False, "hit", 1.0)
        stats = rec.lines[0x80]
        assert stats.xfers == 3
        assert stats.pingpongs == 2  # 0 -> 1 -> 0
        assert stats.spec_reads == 1
        assert stats.hits == 1
        assert stats.reads == 2 and stats.writes == 2
        audit = rec.audits["pool"]
        assert audit.cross_fetches == 3
        assert audit.reader_homed_specs == 1
        assert audit.flagged

    def test_unmapped_region_classified_other(self):
        rec = FlightRecorder()
        rec.line_event(0.0, 0x10, None, 0, False, "dram_local", 60.0)
        stats = rec.lines[0x10]
        assert stats.region == "<unmapped>"
        assert stats.cls == "other"
        assert stats.home == -1

    def test_line_drop(self):
        rec = FlightRecorder()
        rec.line_drop(0x99, 0, dirty=True)  # unseen line: no-op
        assert 0x99 not in rec.lines
        rec.line_event(0.0, 0x99, FakeRegion("pool", 0), 0, True, "dram_local", 10.0)
        rec.line_drop(0x99, 0, dirty=True)
        rec.line_drop(0x99, 1, dirty=False)
        stats = rec.lines[0x99]
        assert stats.drops == 2
        assert stats.dirty_drops == 1

    def test_packet_sampling_and_caps(self):
        rec = FlightRecorder(sample_every=3, max_packets=2)
        assert rec.want(0) and not rec.want(1) and rec.want(3)
        assert rec.packet_begin(0, 10.0)
        assert not rec.packet_begin(0, 11.0)  # duplicate
        assert rec.packet_begin(3, 12.0)
        assert not rec.packet_begin(6, 13.0)  # past max_packets
        assert rec.tracked(3) and not rec.tracked(6)
        rec.packet_event(3, "rx_read", 99.0)  # overwritten by finish
        rec.packet_finish(3, 50.0)
        assert not rec.tracked(3)
        rec.packet_finish(3, 60.0)  # double finish: no-op
        assert rec.waterfalls.completed == 1
        assert rec.waterfalls.samples[0].total_ns == 38.0

    def test_report_enumerates_all_classes(self):
        rec = FlightRecorder()
        report = rec.report()
        assert report["schema"] == "repro.obs/flight-v1"
        assert set(report["classes"]) == set(REGION_CLASSES)
        assert report["thrash"] == []
        assert report["homing_audit"] == []

    def test_null_recorder_is_inert(self):
        FLIGHT_OFF.line_event(0.0, 0, None, 0, False, "hit", 1.0)
        FLIGHT_OFF.line_drop(0, 0, False)
        assert not FLIGHT_OFF.want(0)
        assert not FLIGHT_OFF.packet_begin(0, 0.0)
        assert FLIGHT_OFF.report()["disabled"]
        assert FLIGHT_OFF.counter_tracks() == []


class TestAttachDetach:
    def test_fabric_attach_forces_reference_path(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        fabric = setup.system.fabric
        assert fabric.flight is None
        was_fast = fabric._fastpath
        rec = FlightRecorder()
        fabric.attach_flight(rec)
        assert fabric.flight is rec
        assert not fabric._fastpath
        fabric.detach_flight()
        assert fabric.flight is None
        assert fabric._fastpath == was_fast

    def test_attach_detach_recorder_spreads_everywhere(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        rec = FlightRecorder()
        attach_recorder(setup, rec)
        assert setup.driver.flight is rec
        assert all(a.flight is rec for a in setup.system.fabric.agents)
        assert setup.interface.pair(0).agent.flight is rec
        detach_recorder(setup)
        assert setup.driver.flight is None
        assert setup.system.fabric.flight is None
        assert setup.interface.pair(0).agent.flight is None


@pytest.fixture(scope="module")
def profile_run():
    return run_profile(icx(), InterfaceKind.CCNIC, n_packets=800, keep_waterfalls=16)


class TestProfileEndToEnd:
    def test_run_completes_and_samples(self, profile_run):
        assert profile_run.result.received == 800
        report = profile_run.report
        assert report["config"]["interface"] == "ccnic"
        assert report["waterfall"]["completed"] == 800
        assert report["waterfall"]["incomplete"] == 0

    def test_thrash_table_distinguishes_regions(self, profile_run):
        classes = profile_run.report["classes"]
        assert set(classes) == set(REGION_CLASSES)
        # CC-NIC loopback thrashes descriptor rings and the payload pool.
        assert classes["descriptor"]["lines"] > 0
        assert classes["descriptor"]["xfers"] > 0
        assert classes["payload"]["lines"] > 0
        assert classes["payload"]["xfers"] > 0
        regions = {entry["region"] for entry in profile_run.report["thrash"]}
        assert regions, "expected thrashing lines"

    def test_homing_audit_present(self, profile_run):
        audit = profile_run.report["homing_audit"]
        assert audit, "cross-socket traffic must produce audit entries"
        by_region = {entry["region"]: entry for entry in audit}
        # The payload pool sees reader-homed speculative reads in loopback.
        assert by_region["pool"]["flagged"]
        assert by_region["pool"]["reader_homed_specs"] > 0

    def test_waterfall_stage_sums_match_latency(self, profile_run):
        samples = profile_run.report["waterfall"]["samples"]
        assert samples
        for sample in samples:
            stage_sum = sum(duration for _name, duration in sample["stages"])
            assert stage_sum == pytest.approx(sample["total_ns"], abs=1e-6)
            assert sample["total_ns"] > 0
        # Sampled totals live inside the measured latency envelope.
        lat = profile_run.result.latency
        stats = profile_run.recorder.waterfalls
        assert stats._total_hist.minimum <= lat.maximum
        assert stats._total_hist.maximum >= lat.minimum

    def test_waterfall_stages_are_causal(self, profile_run):
        order = {name: i for i, name in enumerate(STAGES)}
        for sample in profile_run.report["waterfall"]["samples"]:
            indices = [order[name] for name, _ in sample["stages"]]
            assert indices == sorted(indices)

    def test_report_round_trips_and_rejects_foreign(self, profile_run, tmp_path):
        path = str(tmp_path / "flight.json")
        export_flight_json(profile_run.report, path)
        assert load_flight_json(path) == json.loads(json.dumps(profile_run.report))
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as fh:
            json.dump({"schema": "some/other-v1"}, fh)
        with pytest.raises(ValueError):
            load_flight_json(bad)
        with pytest.raises(ValueError):
            export_flight_json({"classes": {}}, str(tmp_path / "x.json"))

    def test_chrome_trace_merges_counter_tracks(self, profile_run, tmp_path):
        tracer = SpanTracer()
        span = tracer.begin("op", start_ns=10.0)
        tracer.end(span, 20.0)
        path = str(tmp_path / "trace.json")
        export_chrome_trace(tracer, path, flight=profile_run.recorder)
        with open(path) as fh:
            doc = json.load(fh)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "expected merged cross_socket_xfers counter track"
        assert counters[0]["name"] == "cross_socket_xfers"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


def _loopback_fingerprint(flight=None, tracer=None, n_packets=300):
    setup = build_interface(icx(), InterfaceKind.CCNIC)
    if flight is not None:
        attach_recorder(setup, flight)
    if tracer is not None:
        with tracer.attach_fabric(setup.system.fabric):
            result = run_point(setup, 64, n_packets, inflight=32, flight=flight)
    else:
        result = run_point(setup, 64, n_packets, inflight=32, flight=flight)
    assert result.received == n_packets
    return _fingerprint(_system_snapshot(setup.system))


class TestFingerprintInvariance:
    """Instrumented runs must be bit-identical to uninstrumented ones."""

    def test_recorder_attached_vs_detached(self):
        assert _loopback_fingerprint() == _loopback_fingerprint(
            flight=FlightRecorder()
        )

    def test_recorder_attached_matches_slowpath(self, monkeypatch):
        baseline = _loopback_fingerprint()
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
        assert _loopback_fingerprint(flight=FlightRecorder()) == baseline


class TestSpanTracerFabricAudit:
    """S1: traced runs keep their fingerprints on both simulator paths."""

    def test_traced_vs_untraced_fastpath(self):
        assert _loopback_fingerprint() == _loopback_fingerprint(tracer=SpanTracer())

    def test_traced_vs_untraced_slowpath(self, monkeypatch):
        baseline = _loopback_fingerprint()
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
        assert _loopback_fingerprint(tracer=SpanTracer()) == baseline
