"""Small-scope protocol model checker: coverage, mutations, replay.

The checker drives the *real* coherence fabric (fast and reference
twins) through every short op sequence over a few agents and lines and
checks each observed transition against the declarative MESIF spec in
``repro.check.model.TRANSITIONS``. These tests pin the clean-run
contract (full spec coverage, zero violations), prove the checker
catches seeded protocol bugs with shrunk, replayable counterexamples,
and — the scenario-coverage half — assert that the registered
scenarios exercise every spec transition the cross-socket topology can
reach.
"""

import pytest

import repro.topology  # noqa: F401  (registers the topology scenarios)
from repro.check import (
    MUTATIONS,
    TRANSITIONS,
    ModelScope,
    check_model,
    raise_on_failure,
    replay_counterexample,
)
from repro.errors import ConfigError, ModelCheckError
from repro.obs.export import MODEL_SCHEMA, export_model_json, load_model_json
from repro.obs.flight import FlightRecorder
from repro.shard.runner import execute_spec
from repro.shard.spec import scenario, scenario_names


class TestCleanModel:
    @pytest.fixture(scope="class")
    def report(self):
        return check_model(walks=4)

    def test_full_spec_coverage_zero_violations(self, report):
        assert report["ok"]
        assert report["counterexamples"] == []
        assert report["coverage"]["reached"] == report["coverage"]["total"]
        assert report["coverage"]["missing"] == []
        assert not report["truncated"]

    def test_every_transition_has_probes(self, report):
        assert set(report["transitions"]) == set(TRANSITIONS)
        assert all(
            info["count"] > 0 for info in report["transitions"].values()
        )

    def test_schema_and_roundtrip(self, report, tmp_path):
        assert report["schema"] == MODEL_SCHEMA
        assert report["kind"] == "model"
        path = str(tmp_path / "model.json")
        export_model_json(report, path)
        assert load_model_json(path) == report

    def test_foreign_schema_rejected(self, report, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as handle:
            handle.write('{"schema": "repro.check/lint-v1"}')
        with pytest.raises(ValueError):
            load_model_json(path)

    def test_raise_on_failure_passes_clean_report(self, report):
        raise_on_failure(report)

    def test_exhaustive_enumeration_is_deterministic(self, report):
        again = check_model(walks=4)
        assert again["states"] == report["states"]
        assert again["probes"] == report["probes"]
        assert again["transitions"] == report["transitions"]


class TestScopeValidation:
    def test_unknown_platform_rejected(self):
        with pytest.raises(ConfigError):
            ModelScope(platform="tofino")

    def test_empty_agents_rejected(self):
        with pytest.raises(ConfigError):
            ModelScope(agents=())

    def test_invalid_socket_rejected(self):
        with pytest.raises(ConfigError):
            ModelScope(agents=(("h0", 7),))

    def test_scope_doc_roundtrip(self):
        scope = ModelScope(
            agents=(("a", 0), ("b", 1)), line_homes=(1,), platform="spr"
        )
        assert ModelScope.from_doc(scope.to_doc()) == scope

    def test_two_agent_scope_cannot_reach_local_sharing(self):
        # One agent per socket: the *_local cache-to-cache transitions
        # need two same-socket agents, so they stay unreached — the
        # coverage table names exactly what the scope cannot express.
        scope = ModelScope(agents=(("h0", 0), ("n0", 1)), line_homes=(0,))
        report = check_model(scope=scope, walks=0)
        assert report["counterexamples"] == []
        missing = set(report["coverage"]["missing"])
        assert missing == {
            "read_miss_local_clean",
            "read_miss_local_dirty",
            "write_miss_local_clean",
            "write_miss_local_dirty",
            "write_upgrade_local",
        }


class TestMutations:
    EXPECTED_INVARIANT = {
        "skip-hitm-forward": "swmr",
        "skip-remote-invalidate": "swmr",
        "undercharge-remote-cache": "cost-mismatch",
    }

    def test_expected_invariants_cover_all_mutations(self):
        assert set(self.EXPECTED_INVARIANT) == set(MUTATIONS)

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_caught_and_replayable(self, mutation):
        report = check_model(mutation=mutation, walks=0)
        assert not report["ok"]
        assert report["counterexamples"]
        first = report["counterexamples"][0]
        assert first["invariant"] == self.EXPECTED_INVARIANT[mutation]
        violation = replay_counterexample(report, 0)
        assert violation["invariant"] == first["invariant"]

    def test_hitm_counterexample_shrinks_to_two_ops(self):
        # Write then cross-socket read is the minimal HITM trigger; the
        # greedy shrinker must find it no matter where BFS first trips.
        report = check_model(mutation="skip-hitm-forward", walks=0)
        first = report["counterexamples"][0]
        assert len(first["sequence"]) == 2
        assert first["shrunk_from"] >= len(first["sequence"])

    def test_raise_on_failure_carries_counterexample(self):
        report = check_model(mutation="skip-hitm-forward", walks=0)
        with pytest.raises(ModelCheckError) as excinfo:
            raise_on_failure(report)
        assert excinfo.value.invariant == "swmr"
        assert excinfo.value.sequence

    def test_replay_index_out_of_range(self):
        report = check_model(walks=0)
        with pytest.raises(ConfigError):
            replay_counterexample(report, 0)

    def test_stale_counterexample_detected_on_replay(self):
        # Replaying a mutated report *without* the mutation recorded in
        # it would re-apply the mutation; forge a clean-fabric replay by
        # clearing the mutation field instead.
        report = check_model(mutation="skip-hitm-forward", walks=0)
        stale = dict(report, mutation=None)
        with pytest.raises(ModelCheckError):
            replay_counterexample(stale, 0)


class TestScenarioTransitionCoverage:
    """The registered scenarios exercise the spec's reachable transitions.

    Every scenario deploys one coherent agent per socket (host on 0,
    NIC on 1), so the same-socket cache-to-cache transitions — and the
    writer-homed *clean* remote write miss, which needs a capacity
    eviction to leave a clean remote copy behind — are structurally out
    of reach; they are pinned below so this test flags it if a future
    scenario starts covering them.
    """

    STRUCTURALLY_UNREACHED = {
        "r:cache_local",
        "w:cache_local",
        "w:cache_remote",
    }

    @pytest.fixture(scope="class")
    def exercised(self):
        labels = set()
        for name in scenario_names():
            spec = scenario(name)
            if spec.workload == "kv":
                spec = spec.replace(n_ops=400, n_ops_quick=400)
            else:
                spec = spec.replace(n_packets=400, n_packets_quick=400)
            for shard_spec in spec.shard_specs():
                recorder = FlightRecorder()

                def attach(setup, recorder=recorder):
                    setup.system.fabric.attach_flight(recorder)

                execute_spec(shard_spec, quick=True, attach=attach)
                labels |= {
                    ("w" if write else "r") + ":" + kind
                    for (_ts, _line, _sock, write, kind, _ns) in recorder.events
                }
        return labels

    def test_six_scenarios_registered(self):
        assert set(scenario_names()) >= {
            "loopback_64b", "kv_zipf", "faults_canned",
            "kv_zipf_1m", "kv_rack_zipf", "mesh_2x2_loopback",
        }

    def test_scenarios_cover_reachable_spec_transitions(self, exercised):
        spec_labels = {rule.observable for rule in TRANSITIONS.values()}
        missing = spec_labels - exercised
        assert missing == self.STRUCTURALLY_UNREACHED, (
            f"scenario coverage changed: missing={sorted(missing)}"
        )

    def test_no_transition_outside_the_spec(self, exercised):
        spec_labels = {rule.observable for rule in TRANSITIONS.values()}
        assert exercised <= spec_labels, (
            f"scenarios exercised transitions the spec does not model: "
            f"{sorted(exercised - spec_labels)}"
        )
