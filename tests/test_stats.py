"""Counters, histograms and rate meters."""

import math

import pytest

from repro.sim import Counter, Histogram, RateMeter


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("reads")
        c.add("reads", 2)
        assert c.get("reads") == 3
        assert c.get("missing") == 0

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add("x", -1)

    def test_snapshot_and_diff(self):
        c = Counter()
        c.add("a", 5)
        snap = c.snapshot()
        c.add("a", 3)
        c.add("b", 1)
        diff = c.diff(snap)
        assert diff["a"] == 3
        assert diff["b"] == 1

    def test_reset(self):
        c = Counter()
        c.add("a")
        c.reset()
        assert c.get("a") == 0
        assert c.names() == []

    def test_names_sorted(self):
        c = Counter()
        c.add("z")
        c.add("a")
        assert c.names() == ["a", "z"]


class TestHistogram:
    def test_empty_is_nan(self):
        h = Histogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.median)
        assert math.isnan(h.minimum)

    def test_single_sample(self):
        h = Histogram()
        h.record(42.0)
        assert h.median == 42.0
        assert h.percentile(0) == 42.0
        assert h.percentile(100) == 42.0

    def test_median_interpolates(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0, 4.0])
        assert h.median == pytest.approx(2.5)

    def test_percentiles_ordered(self):
        h = Histogram()
        h.extend(range(101))
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(99) == pytest.approx(99.0)
        assert h.minimum == 0
        assert h.maximum == 100

    def test_out_of_range_percentile(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_records_after_sort_are_included(self):
        h = Histogram()
        h.extend([10.0, 20.0])
        assert h.median == 15.0
        h.record(30.0)
        assert h.median == 20.0

    def test_summary_keys(self):
        h = Histogram("lat")
        h.extend([1, 2, 3])
        summary = h.summary()
        assert set(summary) == {"count", "mean", "min", "median", "p99", "max"}
        assert summary["count"] == 3


class TestRateMeter:
    def test_rates(self):
        m = RateMeter()
        m.mark(0.0, byte_count=64)
        m.mark(100.0, byte_count=64)
        # 2 events, 128 bytes over 100ns.
        assert m.events_per_second() == pytest.approx(2 / 100e-9)
        assert m.gbps() == pytest.approx(128 * 8 / 100.0)

    def test_empty_meter(self):
        m = RateMeter()
        assert m.events_per_second() == 0.0
        assert m.gbps() == 0.0
