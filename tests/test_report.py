"""Report builder formatting (the EXPERIMENTS.md generator)."""

from repro.analysis.report import ReportBuilder


class TestReportBuilder:
    def test_heading_levels(self):
        rb = ReportBuilder()
        rb.heading("Top", level=1)
        rb.heading("Sub")
        out = rb.render()
        assert "# Top" in out
        assert "## Sub" in out

    def test_table_markdown(self):
        rb = ReportBuilder()
        rb.table(["a", "b"], [[1, 2.5], ["x", 123.456]])
        out = rb.render()
        assert "| a | b |" in out
        assert "|---|---|" in out
        assert "| 1 | 2.5 |" in out
        assert "| x | 123 |" in out

    def test_para(self):
        rb = ReportBuilder()
        rb.para("hello world")
        assert "hello world" in rb.render()

    def test_float_formatting_thresholds(self):
        rb = ReportBuilder()
        rb.table(["v"], [[0.12345], [99.99], [1234.5]])
        out = rb.render()
        assert "0.123" in out
        assert "100" in out       # 99.99 -> 3 significant digits
        assert "1234" in out or "1235" in out
