"""PCIe substrate: write-combining buffers, MMIO, DMA."""

import pytest

from repro.errors import ConfigError
from repro.pcie import DmaEngine, MmioPath, WcBufferFile
from repro.platform import E810, System, icx


class TestWcBufferFile:
    def test_store_to_open_buffer_is_cheap(self):
        wc = WcBufferFile(n_buffers=4)
        assert wc.store(0, 4) == pytest.approx(wc.store_cost_ns)
        assert wc.open_buffers == 1

    def test_full_line_flushes(self):
        wc = WcBufferFile(n_buffers=4)
        wc.store(0, 64)
        assert wc.flushes == 1
        assert wc.open_buffers == 0

    def test_sequential_fill_flushes(self):
        wc = WcBufferFile(n_buffers=4)
        for i in range(8):
            wc.store(i * 8, 8)
        assert wc.flushes == 1
        assert wc.open_buffers == 0

    def test_eviction_cliff_when_file_full(self):
        """Fig 3: stores are fast until all buffers are open, then each
        new region stalls on an eviction flush."""
        wc = WcBufferFile(n_buffers=4, evict_stall_ns=500.0)
        costs = [wc.store(i * 128, 4) for i in range(8)]
        assert all(c < 20 for c in costs[:4])
        assert all(c >= 500 for c in costs[4:])
        assert wc.evictions == 4

    def test_sfence_drains_everything(self):
        wc = WcBufferFile(n_buffers=8)
        for i in range(3):
            wc.store(i * 128, 4)
        cost = wc.sfence()
        assert cost >= wc.fence_ns + 3 * wc.full_flush_ns
        assert wc.open_buffers == 0

    def test_sfence_empty_is_just_fence(self):
        wc = WcBufferFile()
        assert wc.sfence() == pytest.approx(wc.fence_ns)

    def test_multiline_store_splits(self):
        wc = WcBufferFile(n_buffers=8)
        wc.store(32, 64)  # crosses a line boundary
        assert wc.open_buffers == 2

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            WcBufferFile(n_buffers=0)
        wc = WcBufferFile()
        with pytest.raises(ConfigError):
            wc.store(0, 0)


class TestMmioPath:
    def test_read_latency_matches_calibration(self):
        mmio = MmioPath(E810)
        assert mmio.read(8) == pytest.approx(982.0)
        assert mmio.read(64) == pytest.approx(982.0 + 56 * 0.8)

    def test_uc_write_cost(self):
        mmio = MmioPath(E810, uc_store_ns=90.0)
        assert mmio.uc_write(4) == pytest.approx(90.0)
        assert mmio.uc_writes == 1

    def test_wc_path_wired_to_spec(self):
        mmio = MmioPath(E810)
        assert mmio.wc.n_buffers == E810.wc_buffers
        assert mmio.wc.evict_stall_ns == E810.wc_evict_stall_ns

    def test_bad_sizes(self):
        mmio = MmioPath(E810)
        with pytest.raises(ConfigError):
            mmio.read(0)
        with pytest.raises(ConfigError):
            mmio.uc_write(0)


class TestDmaEngine:
    def make(self):
        system = System(icx())
        from repro.interconnect import Link

        link = Link(system.sim, "pcie", latency_ns=450.0,
                    bandwidth_bytes_per_ns=31.5, header_overhead=24)
        return system, DmaEngine(system, E810, link)

    def test_read_full_round_trip(self):
        system, dma = self.make()
        region = system.alloc_host("buf", 4096)
        cost = dma.read(region.base, 512)
        assert cost >= E810.dma_rtt_ns

    def test_pipelined_read_hides_rtt(self):
        system, dma = self.make()
        region = system.alloc_host("buf", 4096)
        full = dma.read(region.base, 512)
        pipelined = dma.read(region.base + 512, 512, pipelined=True)
        assert pipelined < full - E810.dma_rtt_ns / 2

    def test_write_is_posted(self):
        system, dma = self.make()
        region = system.alloc_host("buf", 4096)
        cost = dma.write(region.base, 512)
        assert cost < E810.dma_rtt_ns / 2

    def test_ddio_installs_into_host_llc(self):
        """After a DMA write, a host core read is a local cache hit."""
        system, dma = self.make()
        region = system.alloc_host("buf", 4096)
        host = system.new_host_core("h")
        dma.write(region.base, 64)
        latency = system.fabric.read(host, region.base, 64)
        assert latency == pytest.approx(system.cost.local_cache)

    def test_dma_write_invalidates_host_copies(self):
        system, dma = self.make()
        region = system.alloc_host("buf", 4096)
        host = system.new_host_core("h")
        system.fabric.write(host, region.base, 64)
        dma.write(region.base, 64)
        assert not host.holds(region.base // 64)

    def test_bad_sizes(self):
        _system, dma = self.make()
        with pytest.raises(ConfigError):
            dma.read(0, 0)
        with pytest.raises(ConfigError):
            dma.write(0, -1)
