"""Network-function forwarding app (§6 extension)."""

import pytest

from repro.analysis.loopback import InterfaceKind, build_interface
from repro.apps.forwarding import HEADER_BYTES, ForwardingApp
from repro.errors import WorkloadError
from repro.platform import icx


def make(header_only, pkt_size=1500, n_packets=400):
    setup = build_interface(icx(), InterfaceKind.CCNIC)
    return ForwardingApp(setup, pkt_size, n_packets, header_only=header_only,
                         offered_mpps=10.0)


class TestForwarding:
    def test_all_packets_forwarded(self):
        app = make(header_only=True)
        result = app.run()
        assert result.forwarded == 400

    def test_full_payload_mode(self):
        app = make(header_only=False, n_packets=300)
        result = app.run()
        assert result.forwarded == 300

    def test_header_only_moves_less_wire_data(self):
        header = make(header_only=True, n_packets=600).run()
        full = make(header_only=False, n_packets=600).run()
        assert header.wire_bytes_per_pkt < full.wire_bytes_per_pkt

    def test_wire_bytes_accounted(self):
        result = make(header_only=True).run()
        assert result.wire_bytes_per_pkt > 0

    def test_latency_recorded(self):
        result = make(header_only=True).run()
        assert result.latency.count > 0
        assert result.latency.median > 0


class TestValidation:
    def test_packet_must_fit_header(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        with pytest.raises(WorkloadError):
            ForwardingApp(setup, HEADER_BYTES - 1, 10, header_only=True)

    def test_positive_packet_count(self):
        setup = build_interface(icx(), InterfaceKind.CCNIC)
        with pytest.raises(WorkloadError):
            ForwardingApp(setup, 256, 0, header_only=True)
