"""Fault plans, the deterministic injector, and the recovery machinery."""

import json

import pytest

from repro.analysis.loopback import InterfaceKind, build_interface, run_point
from repro.core.recovery import RecoverableDriver, RecoveryPolicy, RingWatchdog
from repro.core.results import TxResult
from repro.errors import FaultError, RingTimeoutError
from repro.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.interconnect import Link, MessageClass
from repro.platform import icx
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Plan parsing and validation
# ----------------------------------------------------------------------
class TestFaultEvent:
    def test_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="cosmic_ray")

    def test_probability_bounds(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="link_drop", probability=0.0)
        with pytest.raises(FaultError):
            FaultEvent(kind="link_drop", probability=1.5)
        FaultEvent(kind="link_drop", probability=1.0)  # inclusive upper bound

    def test_window_ordering(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="link_delay", start_ns=100.0, end_ns=50.0)
        with pytest.raises(FaultError):
            FaultEvent(kind="link_delay", start_ns=-1.0)

    def test_degrade_factor_bounds(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="link_degrade", factor=1.0)
        with pytest.raises(FaultError):
            FaultEvent(kind="link_degrade", factor=0.0)
        FaultEvent(kind="link_degrade", factor=0.5)

    def test_nic_kinds_need_duration(self):
        with pytest.raises(FaultError):
            FaultEvent(kind="nic_reset")
        FaultEvent(kind="nic_reset", duration_ns=1000.0)

    def test_active_window(self):
        ev = FaultEvent(kind="link_delay", start_ns=10.0, end_ns=20.0)
        assert not ev.active(9.9)
        assert ev.active(10.0)
        assert ev.active(19.9)
        assert not ev.active(20.0)

    def test_target_and_queue_matching(self):
        ev = FaultEvent(kind="link_drop", target="upi")
        assert ev.matches_link("upi")
        assert not ev.matches_link("pcie-e810")
        anyq = FaultEvent(kind="nic_stall", duration_ns=1.0)
        assert anyq.matches_queue(0) and anyq.matches_queue(7)
        q3 = FaultEvent(kind="nic_stall", duration_ns=1.0, queue=3)
        assert q3.matches_queue(3) and not q3.matches_queue(0)


class TestFaultPlan:
    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"events": [], "bogus": 1})
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"events": [{"kind": "link_drop", "zap": 1}]})
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"events": [{"probability": 0.5}]})  # no kind

    def test_json_round_trip(self):
        plan = FaultPlan.canned()
        again = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert again.to_dict() == plan.to_dict()

    def test_bad_json(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan.canned().to_dict()))
        assert FaultPlan.load(str(path)).kinds() == FaultPlan.canned().kinds()

    def test_load_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "plan.toml"
        path.write_text(
            'name = "t"\n'
            "[[events]]\n"
            'kind = "link_delay"\n'
            "probability = 0.5\n"
            "extra_ns = 100.0\n"
        )
        plan = FaultPlan.load(str(path))
        assert plan.name == "t"
        assert plan.events[0].kind == "link_delay"
        assert plan.events[0].extra_ns == 100.0

    def test_load_missing_file(self):
        with pytest.raises(FaultError):
            FaultPlan.load("/nonexistent/plan.json")

    def test_restricted(self):
        plan = FaultPlan.canned()
        sub = plan.restricted(["nic_reset"])
        assert sub.kinds() == ("nic_reset",)
        with pytest.raises(FaultError):
            plan.restricted(["bogus_kind"])

    def test_canned_covers_every_kind(self):
        assert FaultPlan.canned().kinds() == FAULT_KINDS

    def test_events_of(self):
        plan = FaultPlan.canned()
        assert all(ev.kind == "link_drop" for ev in plan.events_of("link_drop"))
        assert len(plan.events_of("nic_stall", "nic_reset")) == 2


# ----------------------------------------------------------------------
# Injector decisions
# ----------------------------------------------------------------------
def _always(kind, probability=1.0, **kw):
    return FaultPlan(events=(FaultEvent(kind=kind, probability=probability, **kw),))


class TestFaultInjector:
    def test_requires_a_plan(self):
        with pytest.raises(FaultError):
            FaultInjector({"events": []})  # dict, not FaultPlan

    def test_deterministic_replay(self):
        plan = FaultPlan.canned()
        logs = []
        for _ in range(2):
            inj = FaultInjector(plan, seed=11)
            for i in range(400):
                now = i * 1000.0
                inj.link_decide("upi", now)
                inj.snoop_decide(now)
                inj.nic_decide(0, now)
            logs.append(inj.injection_log)
        assert logs[0] == logs[1]
        assert FaultInjector(plan, seed=12) is not None  # different seed builds fine

    def test_seed_changes_the_draw_sequence(self):
        plan = _always("link_drop", probability=0.5)

        def draws(seed):
            inj = FaultInjector(plan, seed=seed)
            return tuple(
                inj.link_decide("upi", float(i)) is not None for i in range(64)
            )

        assert draws(1) != draws(2)

    def test_link_decide_respects_window_and_target(self):
        plan = _always("link_delay", start_ns=100.0, end_ns=200.0,
                       extra_ns=50.0, target="upi")
        inj = FaultInjector(plan)
        assert inj.link_decide("upi", 50.0) is None
        assert inj.link_decide("pcie-e810", 150.0) is None
        fault = inj.link_decide("upi", 150.0)
        assert fault.kind == "link_delay" and fault.extra_ns == 50.0
        assert inj.total_injected() == 1

    def test_link_drop_and_duplicate_flags(self):
        drop = FaultInjector(_always("link_drop", extra_ns=400.0)).link_decide("l", 0.0)
        assert drop.retransmit and not drop.duplicate and drop.extra_ns == 400.0
        dup = FaultInjector(_always("link_duplicate")).link_decide("l", 0.0)
        assert dup.duplicate and not dup.retransmit and dup.extra_ns == 0.0

    def test_ser_scale_compounds_and_is_pure(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="link_degrade", factor=0.5, end_ns=100.0),
            FaultEvent(kind="link_degrade", factor=0.5, end_ns=100.0),
        ))
        inj = FaultInjector(plan)
        assert inj.link_ser_scale("upi", 50.0) == pytest.approx(4.0)
        assert inj.link_ser_scale("upi", 200.0) == 1.0
        # Pure: no RNG consumed, so a later draw is unaffected by calls.
        assert inj.total_injected() == 0

    def test_snoop_decide(self):
        nack = FaultInjector(_always("snoop_nack", extra_ns=90.0)).snoop_decide(0.0)
        assert nack.reissue and nack.extra_ns == 90.0
        delay = FaultInjector(_always("snoop_delay", extra_ns=10.0)).snoop_decide(0.0)
        assert not delay.reissue and delay.extra_ns == 10.0

    def test_nic_events_fire_once_per_queue(self):
        plan = _always("nic_reset", start_ns=100.0, duration_ns=1000.0)
        inj = FaultInjector(plan)
        assert inj.nic_decide(0, 50.0) is None  # not due yet
        fault = inj.nic_decide(0, 150.0)
        assert fault.kind == "nic_reset" and fault.duration_ns == 1000.0
        assert inj.nic_decide(0, 200.0) is None  # one-shot
        assert inj.nic_decide(1, 200.0) is not None  # independent per queue


# ----------------------------------------------------------------------
# Link-layer hooks
# ----------------------------------------------------------------------
def _link(bw=76.0, latency=50.0):
    sim = Simulator()
    return sim, Link(sim, "test", latency_ns=latency,
                     bandwidth_bytes_per_ns=bw, header_overhead=12)


class TestLinkHooks:
    BASE = 50.0 + 1.0  # latency + 76B/76Bns serialization for READ

    def test_delay_adds_extra_ns(self):
        _sim, link = _link()
        link.faults = FaultInjector(_always("link_delay", extra_ns=150.0))
        cost = link.one_way(MessageClass.READ, direction=0)
        assert cost == pytest.approx(self.BASE + 150.0)

    def test_drop_retransmits(self):
        _sim, link = _link()
        link.faults = FaultInjector(_always("link_drop", extra_ns=400.0))
        cost = link.one_way(MessageClass.READ, direction=0)
        # Second serialization + retry turnaround; the wasted copy still
        # consumed wire bandwidth.
        assert cost == pytest.approx(self.BASE + 400.0 + 1.0)
        assert link.stats[0].messages == 2
        assert link.stats[0].wire_bytes == 152

    def test_duplicate_consumes_bandwidth_without_delay(self):
        _sim, link = _link()
        link.faults = FaultInjector(_always("link_duplicate"))
        cost = link.one_way(MessageClass.READ, direction=0)
        assert cost == pytest.approx(self.BASE)
        assert link.stats[0].wire_bytes == 152

    def test_degrade_scales_serialization(self):
        _sim, link = _link()
        link.faults = FaultInjector(_always("link_degrade", factor=0.5))
        cost = link.one_way(MessageClass.READ, direction=0)
        assert cost == pytest.approx(50.0 + 2.0)

    def test_no_faults_attribute_means_clean_path(self):
        _sim, link = _link()
        assert link.faults is None
        assert link.one_way(MessageClass.READ, direction=0) == pytest.approx(self.BASE)


class TestLinkResetStats:
    def test_reset_clears_per_class_wire_bytes(self):
        _sim, link = _link()
        link.one_way(MessageClass.READ, direction=0)
        link.one_way(MessageClass.SNOOP, direction=1)
        assert link.stats[0].wire_by_class == {"read": 76}
        link.reset_stats()
        assert link.stats[0].wire_by_class == {}
        assert link.stats[1].wire_by_class == {}
        assert link.total_wire_bytes() == 0

    def test_reset_clears_utilization_window(self):
        sim, link = _link()
        for _ in range(300):
            link.occupy(MessageClass.READ, direction=0, actor="a")
        sim.now = link.WINDOW_NS + 1.0
        link.occupy(MessageClass.READ, direction=0, actor="a")
        assert link.rho(0) > 0.0
        link.reset_stats()
        assert link.rho(0) == 0.0
        # A fresh competitor sees no leftover queueing pressure.
        assert link.occupy(MessageClass.READ, direction=0, actor="b") == 0.0


# ----------------------------------------------------------------------
# Recovery machinery
# ----------------------------------------------------------------------
class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(FaultError):
            RecoveryPolicy(backoff_base_ns=0.0)
        with pytest.raises(FaultError):
            RecoveryPolicy(backoff_cap_ns=1.0, backoff_base_ns=2.0)
        with pytest.raises(FaultError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(FaultError):
            RecoveryPolicy(watchdog_ns=0.0)

    def test_backoff_doubles_and_caps(self):
        policy = RecoveryPolicy(backoff_base_ns=100.0, backoff_cap_ns=500.0)
        assert policy.backoff_ns(1) == 100.0
        assert policy.backoff_ns(2) == 200.0
        assert policy.backoff_ns(3) == 400.0
        assert policy.backoff_ns(4) == 500.0
        assert policy.backoff_ns(50) == 500.0
        with pytest.raises(FaultError):
            policy.backoff_ns(0)


class TestRingWatchdog:
    def test_stall_detection(self):
        wd = RingWatchdog(RecoveryPolicy(watchdog_ns=100.0))
        assert not wd.stalled(0.0, depth=4, consumed=10)
        assert not wd.stalled(50.0, depth=4, consumed=10)  # budget not spent
        assert wd.stalled(100.0, depth=4, consumed=10)

    def test_progress_resets_the_clock(self):
        wd = RingWatchdog(RecoveryPolicy(watchdog_ns=100.0))
        wd.stalled(0.0, depth=4, consumed=10)
        assert not wd.stalled(90.0, depth=4, consumed=11)  # consumption moved
        assert not wd.stalled(150.0, depth=4, consumed=11)
        assert wd.stalled(190.0, depth=4, consumed=11)

    def test_empty_ring_never_stalls(self):
        wd = RingWatchdog(RecoveryPolicy(watchdog_ns=100.0))
        wd.stalled(0.0, depth=0, consumed=5)
        assert not wd.stalled(1000.0, depth=0, consumed=5)

    def test_reset_rearms(self):
        wd = RingWatchdog(RecoveryPolicy(watchdog_ns=100.0))
        wd.stalled(0.0, depth=4, consumed=10)
        wd.reset(50.0)
        # The first post-reset observation re-arms the clock; a full
        # watchdog budget must elapse from there.
        assert not wd.stalled(60.0, depth=4, consumed=10)
        assert not wd.stalled(159.0, depth=4, consumed=10)
        assert wd.stalled(160.0, depth=4, consumed=10)


class _StubDriver(RecoverableDriver):
    """Minimal driver exposing the shared tx_submit machinery."""

    queue_index = 0

    def __init__(self, accepts):
        self._init_recovery_state()
        self._accepts = list(accepts)

    def tx_burst(self, entries, base_ns=0.0):
        accepted = self._accepts.pop(0) if self._accepts else 0
        return TxResult(accepted, 10.0)

    def free(self, bufs):
        return 0.0


class TestTxSubmit:
    ENTRIES = [("buf", "pkt")]

    def test_passthrough_without_recovery(self):
        driver = _StubDriver([0, 0, 0])
        for _ in range(3):
            assert driver.tx_submit(self.ENTRIES).ns == 10.0  # no backoff

    def test_backoff_grows_until_acceptance(self):
        driver = _StubDriver([0, 0, 4])
        driver.configure_recovery(
            RecoveryPolicy(backoff_base_ns=100.0, backoff_cap_ns=1e6, max_retries=10)
        )
        assert driver.tx_submit(self.ENTRIES).ns == pytest.approx(110.0)
        assert driver.tx_submit(self.ENTRIES).ns == pytest.approx(210.0)
        ok = driver.tx_submit(self.ENTRIES)
        assert ok.count == 4 and ok.ns == 10.0
        assert driver.tx_retries == 2 and driver.tx_timeouts == 0

    def test_timeout_after_budget(self):
        driver = _StubDriver([])
        driver.configure_recovery(RecoveryPolicy(max_retries=3))
        for _ in range(3):
            driver.tx_submit(self.ENTRIES)
        with pytest.raises(RingTimeoutError):
            driver.tx_submit(self.ENTRIES)
        assert driver.tx_timeouts == 1
        # The counter restarts: the next zero-accept is retry 1 again.
        assert driver.tx_submit(self.ENTRIES).ns == pytest.approx(
            10.0 + RecoveryPolicy().backoff_base_ns
        )


# ----------------------------------------------------------------------
# End to end: drivers recover, runs are deterministic
# ----------------------------------------------------------------------
def _faulted_run(kind, plan, seed, n_packets=1500):
    faults = FaultInjector(plan, seed=seed)
    setup = build_interface(icx(), kind, faults=faults)
    result = run_point(
        setup, pkt_size=64, n_packets=n_packets, inflight=64,
        tx_batch=16, rx_batch=16, recovery=RecoveryPolicy(),
    )
    return setup, result, faults


class TestEndToEnd:
    def test_reset_recovery_ccnic(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="nic_reset", start_ns=20_000.0, duration_ns=15_000.0),
        ))
        setup, result, faults = self._run(InterfaceKind.CCNIC, plan)
        assert faults.total_injected() == 1
        assert setup.driver.watchdog_resets >= 1
        assert result.received + result.dropped == 1500
        assert result.received > 0 and result.dropped > 0

    def test_reset_recovery_pcie(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="nic_reset", start_ns=20_000.0, duration_ns=15_000.0),
        ))
        setup, result, faults = self._run(InterfaceKind.E810, plan)
        assert faults.total_injected() == 1
        assert setup.driver.watchdog_resets >= 1
        assert result.received + result.dropped == 1500
        assert result.received > 0

    def test_stall_recovers_without_loss(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="nic_stall", start_ns=20_000.0, duration_ns=10_000.0),
        ))
        _setup, result, faults = self._run(InterfaceKind.CCNIC, plan)
        assert faults.total_injected() == 1
        assert result.received == 1500  # a stall delays, it does not lose

    def test_deterministic_per_seed(self):
        plan = FaultPlan.canned()
        fingerprints = []
        for _ in range(2):
            _setup, result, faults = self._run(InterfaceKind.CCNIC, plan, seed=9)
            fingerprints.append((
                result.received, result.dropped, result.sent,
                result.latency.median, faults.injection_log,
            ))
        assert fingerprints[0] == fingerprints[1]

    def test_inert_plan_matches_no_faults(self):
        # A plan whose windows never open must not perturb the run.
        plan = FaultPlan(events=(
            FaultEvent(kind="link_drop", start_ns=1e15),
            FaultEvent(kind="nic_reset", start_ns=1e15, duration_ns=1.0),
        ))
        _s1, faulted, faults = self._run(InterfaceKind.CCNIC, plan)
        assert faults.total_injected() == 0
        clean_setup = build_interface(icx(), InterfaceKind.CCNIC)
        clean = run_point(
            clean_setup, pkt_size=64, n_packets=1500, inflight=64,
            tx_batch=16, rx_batch=16,
        )
        assert faulted.received == clean.received
        assert faulted.latency.median == clean.latency.median
        assert faulted.dropped == 0

    @staticmethod
    def _run(kind, plan, seed=0):
        return _faulted_run(kind, plan, seed)
