"""Additional microbenchmark-harness behaviours."""

from repro.analysis.microbench import (
    pingpong,
    stream_throughput,
    wc_write_throughput,
)
from repro.platform import icx, spr


class TestStream:
    def test_throughput_positive_and_bounded(self):
        gbps = stream_throughput(icx(), pairs=1, caching=True, chunks=4)
        assert 0 < gbps < 443.0 * 1.2

    def test_more_pairs_more_throughput_caching(self):
        one = stream_throughput(icx(), 1, caching=True, chunks=4)
        four = stream_throughput(icx(), 4, caching=True, chunks=4)
        assert four > 1.8 * one

    def test_caching_beats_nt_per_pair(self):
        caching = stream_throughput(icx(), 1, caching=True, chunks=4)
        nt = stream_throughput(icx(), 1, caching=False, chunks=4)
        assert caching > nt

    def test_spr_outpaces_icx(self):
        """The terabit interconnect and wider cores stream faster."""
        assert stream_throughput(spr(), 4, True, chunks=4) > \
            stream_throughput(icx(), 4, True, chunks=4)


class TestWcThroughputShape:
    def test_monotonic_in_barrier_size(self):
        values = [wc_write_throughput(icx(), "wc_mmio", s)
                  for s in (64, 256, 1024, 4096)]
        assert values == sorted(values)

    def test_wc_dram_beats_wc_mmio(self):
        for barrier in (256, 2048):
            assert wc_write_throughput(icx(), "wc_dram", barrier) >= \
                wc_write_throughput(icx(), "wc_mmio", barrier)


class TestPingpongShape:
    def test_spr_slower_than_icx(self):
        """SPR's higher remote latencies show up in the pingpong."""
        assert pingpong(spr(), "S0C", 60).median > pingpong(icx(), "S0C", 60).median

    def test_rtt_positive_and_stable(self):
        h = pingpong(icx(), "S0", 80)
        assert h.minimum > 0
        # Steady state: the upper half of the distribution is tight
        # (the first iterations are cheaper while caches warm).
        assert h.percentile(90) < 1.2 * h.median
